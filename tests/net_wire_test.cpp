// Protocol-torture suite for the wire format (src/net/wire.h).
//
// The properties under test, all seeded and deterministic:
//   - round-trip: random frames encode → (chunked) assemble → decode
//     bit-identically, including doubles compared by raw IEEE-754 bits;
//   - corruption: EVERY single-byte corruption of a frame (every position ×
//     every wrong byte value) is rejected — kError or kNeedMore, never a
//     delivered frame. FNV-1a's per-step bijectivity makes this exhaustive
//     property deterministic, not probabilistic;
//   - truncation: every strict prefix of a valid frame is kNeedMore, never
//     a frame and never an error;
//   - hostile bytes never crash or over-read (run under ASan in CI).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/wire.h"

using namespace upa;
using namespace upa::net;

namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Doubles whose bit patterns exercise the encoder: ±0, denormals, inf,
/// NaN payloads, plus ordinary values.
double RandomDouble(Rng& rng) {
  switch (rng.UniformU64(6)) {
    case 0:
      return rng.UniformDouble(-1e9, 1e9);
    case 1:
      return -0.0;
    case 2: {
      double v = 0;
      uint64_t bits = rng.NextU64();  // arbitrary bits, incl. NaN/denormal
      std::memcpy(&v, &bits, sizeof(v));
      return v;
    }
    case 3:
      return std::numeric_limits<double>::infinity();
    case 4:
      return std::numeric_limits<double>::denorm_min();
    default:
      return rng.Normal();
  }
}

/// Strings with embedded NULs, high bytes, and lengths crossing the chunk
/// sizes the assembler is fed with.
std::string RandomString(Rng& rng, size_t max_len) {
  size_t len = rng.UniformU64(max_len + 1);
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>(rng.UniformU64(256));
  }
  return s;
}

WireQuery RandomQuery(Rng& rng) {
  WireQuery q;
  q.client_tag = rng.NextU64();
  q.tenant = RandomString(rng, 24);
  q.dataset_id = RandomString(rng, 24);
  q.epsilon = RandomDouble(rng);
  q.seed = rng.NextU64();
  q.fingerprint = rng.NextU64();
  q.deadline_ms = static_cast<int64_t>(rng.NextU64());
  q.sql = RandomString(rng, 200);
  return q;
}

WireResult RandomResult(Rng& rng) {
  WireResult r;
  r.client_tag = rng.NextU64();
  r.code = static_cast<StatusCode>(rng.UniformU64(10));
  r.message = RandomString(rng, 80);
  r.response.released = RandomDouble(rng);
  r.response.epsilon = RandomDouble(rng);
  r.response.local_sensitivity = RandomDouble(rng);
  r.response.out_range.lo = RandomDouble(rng);
  r.response.out_range.hi = RandomDouble(rng);
  r.response.attack_suspected = rng.UniformU64(2) == 1;
  r.response.records_removed = static_cast<size_t>(rng.UniformU64(1000));
  r.response.degenerate_sensitivity = rng.UniformU64(2) == 1;
  r.response.sensitivity_cache_hit = rng.UniformU64(2) == 1;
  r.response.dataset_epoch = rng.NextU64();
  r.response.queue_seconds = RandomDouble(rng);
  r.response.seconds.sample = RandomDouble(rng);
  r.response.seconds.map = RandomDouble(rng);
  r.response.seconds.reduce = RandomDouble(rng);
  r.response.seconds.enforce = RandomDouble(rng);
  r.response.seconds.total = RandomDouble(rng);
  return r;
}

/// Feed `bytes` to a fresh assembler in random-sized chunks and return
/// every frame it produces. Fails the test on a framing error.
std::vector<Frame> AssembleChunked(std::string_view bytes, Rng& rng) {
  FrameAssembler assembler;
  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t chunk = 1 + rng.UniformU64(97);
    chunk = std::min(chunk, bytes.size() - pos);
    assembler.Feed(bytes.substr(pos, chunk));
    pos += chunk;
    for (;;) {
      Frame frame;
      Status error = Status::Ok();
      FrameAssembler::Outcome outcome = assembler.Next(&frame, &error);
      if (outcome == FrameAssembler::Outcome::kNeedMore) break;
      EXPECT_NE(outcome, FrameAssembler::Outcome::kError)
          << error.ToString() << " (valid stream must never error)";
      if (outcome == FrameAssembler::Outcome::kError) return frames;
      frames.push_back(std::move(frame));
    }
  }
  return frames;
}

void ExpectQueriesBitIdentical(const WireQuery& a, const WireQuery& b) {
  EXPECT_EQ(a.client_tag, b.client_tag);
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.dataset_id, b.dataset_id);
  EXPECT_EQ(Bits(a.epsilon), Bits(b.epsilon));
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.sql, b.sql);
}

void ExpectResultsBitIdentical(const WireResult& a, const WireResult& b) {
  EXPECT_EQ(a.client_tag, b.client_tag);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.message, b.message);
  EXPECT_EQ(Bits(a.response.released), Bits(b.response.released));
  EXPECT_EQ(Bits(a.response.epsilon), Bits(b.response.epsilon));
  EXPECT_EQ(Bits(a.response.local_sensitivity),
            Bits(b.response.local_sensitivity));
  EXPECT_EQ(Bits(a.response.out_range.lo), Bits(b.response.out_range.lo));
  EXPECT_EQ(Bits(a.response.out_range.hi), Bits(b.response.out_range.hi));
  EXPECT_EQ(a.response.attack_suspected, b.response.attack_suspected);
  EXPECT_EQ(a.response.records_removed, b.response.records_removed);
  EXPECT_EQ(a.response.degenerate_sensitivity,
            b.response.degenerate_sensitivity);
  EXPECT_EQ(a.response.sensitivity_cache_hit,
            b.response.sensitivity_cache_hit);
  EXPECT_EQ(a.response.dataset_epoch, b.response.dataset_epoch);
  EXPECT_EQ(Bits(a.response.queue_seconds), Bits(b.response.queue_seconds));
  EXPECT_EQ(Bits(a.response.seconds.sample), Bits(b.response.seconds.sample));
  EXPECT_EQ(Bits(a.response.seconds.map), Bits(b.response.seconds.map));
  EXPECT_EQ(Bits(a.response.seconds.reduce), Bits(b.response.seconds.reduce));
  EXPECT_EQ(Bits(a.response.seconds.enforce),
            Bits(b.response.seconds.enforce));
  EXPECT_EQ(Bits(a.response.seconds.total), Bits(b.response.seconds.total));
}

TEST(NetWire, QueryFramesRoundTripBitIdentically) {
  Rng rng(20260806);
  for (int i = 0; i < 200; ++i) {
    WireQuery query = RandomQuery(rng);
    std::string bytes = EncodeQueryFrame(query);
    std::vector<Frame> frames = AssembleChunked(bytes, rng);
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, FrameType::kQueryRequest);
    WireQuery decoded;
    ASSERT_TRUE(DecodeQueryPayload(frames[0].payload, &decoded).ok());
    ExpectQueriesBitIdentical(query, decoded);
  }
}

TEST(NetWire, ResultFramesRoundTripBitIdentically) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    WireResult result = RandomResult(rng);
    std::string bytes = EncodeResultFrame(result);
    std::vector<Frame> frames = AssembleChunked(bytes, rng);
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, FrameType::kQueryResponse);
    WireResult decoded;
    ASSERT_TRUE(DecodeResultPayload(frames[0].payload, &decoded).ok());
    ExpectResultsBitIdentical(result, decoded);
  }
}

TEST(NetWire, StatsAndErrorFramesRoundTrip) {
  Rng rng(99);
  std::string text = RandomString(rng, 4000);
  std::vector<Frame> frames =
      AssembleChunked(EncodeStatsResponseFrame(text), rng);
  ASSERT_EQ(frames.size(), 1u);
  std::string decoded_text;
  ASSERT_TRUE(
      DecodeStatsResponsePayload(frames[0].payload, &decoded_text).ok());
  EXPECT_EQ(text, decoded_text);

  Status error_in = Status::ResourceExhausted("queue full");
  frames = AssembleChunked(EncodeErrorFrame(error_in), rng);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kError);
  Status error_out = Status::Ok();
  ASSERT_TRUE(DecodeErrorPayload(frames[0].payload, &error_out).ok());
  EXPECT_EQ(error_in.code(), error_out.code());
  EXPECT_EQ(error_in.message(), error_out.message());

  frames = AssembleChunked(EncodeStatsRequestFrame(), rng);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kStatsRequest);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(NetWire, PipelinedFramesSurviveArbitraryChunking) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<WireQuery> queries;
    std::string stream;
    size_t count = 1 + rng.UniformU64(8);
    for (size_t i = 0; i < count; ++i) {
      queries.push_back(RandomQuery(rng));
      stream += EncodeQueryFrame(queries.back());
    }
    std::vector<Frame> frames = AssembleChunked(stream, rng);
    ASSERT_EQ(frames.size(), queries.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      WireQuery decoded;
      ASSERT_TRUE(DecodeQueryPayload(frames[i].payload, &decoded).ok());
      ExpectQueriesBitIdentical(queries[i], decoded);
    }
  }
}

/// The exhaustive corruption property: for every byte position and every
/// wrong value of that byte, the assembler must refuse to deliver a frame.
/// (kNeedMore is acceptable — corrupting the length field upward makes the
/// frame look incomplete — but a delivered frame would be an undetected
/// corruption.) Also counts toward the ≥1000-seeded-mutation bar: this is
/// ~frame_size × 255 mutations per frame.
void ExpectEveryByteCorruptionRejected(const std::string& valid) {
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    for (int delta = 1; delta < 256; ++delta) {
      std::string corrupt = valid;
      corrupt[pos] = static_cast<char>(
          (static_cast<unsigned char>(valid[pos]) + delta) & 0xff);
      FrameAssembler assembler;
      assembler.Feed(corrupt);
      Frame frame;
      Status error = Status::Ok();
      FrameAssembler::Outcome outcome = assembler.Next(&frame, &error);
      ASSERT_NE(outcome, FrameAssembler::Outcome::kFrame)
          << "undetected corruption at byte " << pos << " delta " << delta;
      // A second poke must not crash or change its mind.
      outcome = assembler.Next(&frame, &error);
      ASSERT_NE(outcome, FrameAssembler::Outcome::kFrame);
    }
  }
}

TEST(NetWire, EverySingleByteCorruptionOfAQueryFrameIsRejected) {
  Rng rng(42);
  WireQuery query = RandomQuery(rng);
  query.sql = "SELECT COUNT(*) FROM lineitem";
  ExpectEveryByteCorruptionRejected(EncodeQueryFrame(query));
}

TEST(NetWire, EverySingleByteCorruptionOfAResultFrameIsRejected) {
  Rng rng(43);
  ExpectEveryByteCorruptionRejected(EncodeResultFrame(RandomResult(rng)));
}

TEST(NetWire, EverySingleByteCorruptionOfAnEmptyPayloadFrameIsRejected) {
  ExpectEveryByteCorruptionRejected(EncodeStatsRequestFrame());
}

TEST(NetWire, EveryTruncationPrefixIsNeedMoreNeverAFrame) {
  Rng rng(44);
  std::string valid = EncodeResultFrame(RandomResult(rng));
  for (size_t len = 0; len < valid.size(); ++len) {
    FrameAssembler assembler;
    assembler.Feed(std::string_view(valid).substr(0, len));
    Frame frame;
    Status error = Status::Ok();
    EXPECT_EQ(assembler.Next(&frame, &error),
              FrameAssembler::Outcome::kNeedMore)
        << "prefix length " << len;
  }
  // The full frame, for contrast, parses.
  FrameAssembler assembler;
  assembler.Feed(valid);
  Frame frame;
  Status error = Status::Ok();
  EXPECT_EQ(assembler.Next(&frame, &error), FrameAssembler::Outcome::kFrame);
}

TEST(NetWire, SeededRandomGarbageNeverCrashesOrOverReads) {
  Rng rng(20260807);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage = RandomString(rng, 300);
    FrameAssembler assembler;
    size_t pos = 0;
    while (pos < garbage.size()) {
      size_t chunk = std::min<size_t>(1 + rng.UniformU64(64),
                                      garbage.size() - pos);
      assembler.Feed(std::string_view(garbage).substr(pos, chunk));
      pos += chunk;
      Frame frame;
      Status error = Status::Ok();
      // Drain; any outcome is legal, crashing or over-reading is not.
      while (assembler.Next(&frame, &error) ==
             FrameAssembler::Outcome::kFrame) {
      }
    }
    // Hostile payloads against every decoder: must fail or succeed, never
    // read out of bounds (ASan enforces).
    WireQuery query;
    (void)DecodeQueryPayload(garbage, &query);
    WireResult result;
    (void)DecodeResultPayload(garbage, &result);
    std::string text;
    (void)DecodeStatsResponsePayload(garbage, &text);
    Status status = Status::Ok();
    (void)DecodeErrorPayload(garbage, &status);
  }
}

TEST(NetWire, StringLengthLyingBeyondPayloadIsRejected) {
  // A payload whose string claims more bytes than the payload holds must
  // fail cleanly (the checksum is valid — the lie is inside the payload).
  PayloadWriter w;
  w.PutU64(7);              // client_tag
  w.PutU32(0xffffffffu);    // tenant length: 4 GiB lie
  std::string frame_bytes = EncodeFrame(FrameType::kQueryRequest, w.bytes());
  FrameAssembler assembler;
  assembler.Feed(frame_bytes);
  Frame frame;
  Status error = Status::Ok();
  ASSERT_EQ(assembler.Next(&frame, &error), FrameAssembler::Outcome::kFrame);
  WireQuery query;
  Status decoded = DecodeQueryPayload(frame.payload, &query);
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
}

TEST(NetWire, TrailingPayloadBytesAreRejected) {
  Rng rng(45);
  WireQuery query = RandomQuery(rng);
  std::string valid = EncodeQueryFrame(query);
  // Rebuild the frame with one trailing payload byte (and a correct
  // checksum, so only ExpectEnd can catch it).
  std::string payload = valid.substr(kFrameHeaderBytes);
  payload.push_back('\0');
  std::string padded = EncodeFrame(FrameType::kQueryRequest, payload);
  FrameAssembler assembler;
  assembler.Feed(padded);
  Frame frame;
  Status error = Status::Ok();
  ASSERT_EQ(assembler.Next(&frame, &error), FrameAssembler::Outcome::kFrame);
  WireQuery decoded;
  EXPECT_FALSE(DecodeQueryPayload(frame.payload, &decoded).ok());
}

TEST(NetWire, OversizeFrameIsRejectedBeforeBuffering) {
  FrameAssembler assembler(/*max_frame_bytes=*/1024);
  WireQuery query;
  query.sql.assign(4096, 'x');
  std::string big = EncodeQueryFrame(query);
  // Feed only the header: the length field alone must condemn the frame.
  assembler.Feed(std::string_view(big).substr(0, kFrameHeaderBytes));
  Frame frame;
  Status error = Status::Ok();
  ASSERT_EQ(assembler.Next(&frame, &error), FrameAssembler::Outcome::kError);
  EXPECT_EQ(error.code(), StatusCode::kResourceExhausted);
}

TEST(NetWire, AssemblerErrorIsLatched) {
  FrameAssembler assembler;
  std::string bad(kFrameHeaderBytes, '\0');  // magic 0: invalid
  assembler.Feed(bad);
  Frame frame;
  Status error = Status::Ok();
  ASSERT_EQ(assembler.Next(&frame, &error), FrameAssembler::Outcome::kError);
  Status first = error;
  // A later valid frame must NOT resurrect the stream.
  assembler.Feed(EncodeStatsRequestFrame());
  ASSERT_EQ(assembler.Next(&frame, &error), FrameAssembler::Outcome::kError);
  EXPECT_EQ(error.code(), first.code());
  EXPECT_EQ(error.message(), first.message());
}

TEST(NetWire, UnknownStatusCodeOnWireIsRejected) {
  PayloadWriter w;
  w.PutU8(200);  // far beyond kDeadlineExceeded
  w.PutString("boom");
  Status out = Status::Ok();
  EXPECT_FALSE(DecodeErrorPayload(w.bytes(), &out).ok());
}

}  // namespace
