// Cooperative cancellation and deadlines.
//
// A CancelToken carries a "stop now" signal (client cancellation, service
// watchdog, or an attached deadline) to a running query. Cancellation is
// cooperative: hot loops poll the token at natural boundaries —
// ThreadPool::ParallelFor chunk boundaries, columnar kernel batches, and
// between UpaRunner phases — and bail out with StatusCode::kCancelled /
// kDeadlineExceeded. Nothing is released after a check observes the
// cancellation, which is what lets the service refund the budget charge
// (refund iff nothing was released; see DESIGN.md "Robustness").
//
// Tokens reach the workers through a thread-local CancelScope stack rather
// than through every call signature: the service installs the request's
// token around the run, and ParallelForChunks re-installs the caller's
// token inside each chunk task (chunks execute on other pool threads).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace upa {

/// Thread-safe one-shot cancellation flag with an optional deadline.
/// `cancelled()` is a single relaxed atomic load; `Check()` additionally
/// polls the deadline (one steady_clock read) — cheap enough for chunk
/// boundaries, not for per-record inner loops.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token. First caller wins; later calls are no-ops. `code`
  /// must be kCancelled or kDeadlineExceeded.
  void Cancel(StatusCode code = StatusCode::kCancelled,
              std::string message = "cancelled");

  /// Arm a deadline `millis` from now; Check() trips the token with
  /// kDeadlineExceeded once it passes. millis <= 0 is ignored.
  void SetDeadlineAfterMillis(int64_t millis);

  bool cancelled() const {
    return tripped_.load(std::memory_order_acquire);
  }

  /// OK while live; the cancellation status once tripped. Polls the
  /// deadline as a side effect, so a deadline expiry is observed by the
  /// first Check() after it passes.
  Status Check();

  /// The trip status without polling the deadline (const observers).
  Status status() const;

 private:
  std::atomic<bool> tripped_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline (steady clock)
  mutable std::mutex mu_;                // code_/message_ on the trip path
  StatusCode code_ = StatusCode::kCancelled;
  std::string message_;
};

/// RAII: installs `token` as the calling thread's current cancel token for
/// the scope's lifetime (nullptr is allowed and means "uncancellable").
/// Scopes nest; the previous token is restored on destruction.
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token) : previous_(current_) {
    current_ = token;
  }
  ~CancelScope() { current_ = previous_; }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The innermost token installed on this thread (nullptr when none).
  static CancelToken* Current() { return current_; }

  /// Convenience: Check() on the current token, OK when none installed.
  static Status CheckCurrent() {
    return current_ != nullptr ? current_->Check() : Status::Ok();
  }

 private:
  static thread_local CancelToken* current_;
  CancelToken* previous_;
};

}  // namespace upa
