// Generator invariants across scales, seeds and skew settings.
#include <gtest/gtest.h>

#include <set>

#include "relational/executor.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace upa::tpch {
namespace {

struct SweepCase {
  size_t orders;
  uint64_t seed;
  double skew;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << "orders" << c.orders << "_seed" << c.seed << "_skew" << c.skew;
}

class GeneratorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GeneratorSweep, StructuralInvariantsHold) {
  const auto& [orders, seed, skew] = GetParam();
  TpchConfig cfg;
  cfg.num_orders = orders;
  cfg.seed = seed;
  cfg.reference_skew = skew;
  TpchDataset data(cfg);

  // Row counts and key ranges.
  EXPECT_EQ(data.orders().NumRows(), orders);
  EXPECT_GE(data.lineitem().NumRows(), orders);
  EXPECT_LE(data.lineitem().NumRows(),
            orders * cfg.max_lineitems_per_order);
  EXPECT_GE(data.supplier().NumRows(), 25u);

  // Every nation has at least one supplier (round-robin assignment).
  std::set<int64_t> nations;
  size_t nk = data.supplier().schema().IndexOf("s_nationkey");
  for (const auto& row : data.supplier().rows()) {
    nations.insert(rel::AsInt(row[nk]));
  }
  EXPECT_EQ(nations.size(), TpchConfig::kNumNations);

  // Orderkeys are unique and dense in [1, orders].
  std::set<int64_t> keys;
  for (const auto& row : data.orders().rows()) {
    keys.insert(rel::AsInt(row[0]));
  }
  EXPECT_EQ(keys.size(), orders);
  EXPECT_EQ(*keys.begin(), 1);
  EXPECT_EQ(*keys.rbegin(), static_cast<int64_t>(orders));
}

TEST_P(GeneratorSweep, AllQueriesProduceFiniteOutputs) {
  const auto& [orders, seed, skew] = GetParam();
  TpchConfig cfg;
  cfg.num_orders = orders;
  cfg.seed = seed;
  cfg.reference_skew = skew;
  TpchDataset data(cfg);
  engine::ExecContext ctx(engine::ExecConfig{.threads = 2});
  rel::Catalog catalog = data.catalog();
  rel::PlanExecutor executor(&ctx, &catalog);
  for (const auto& q : AllTpchQueries()) {
    auto r = executor.Execute(q.plan);
    ASSERT_TRUE(r.ok()) << q.name;
    EXPECT_GE(r.value().output, 0.0) << q.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GeneratorSweep,
    ::testing::Values(SweepCase{100, 1, 1.1}, SweepCase{500, 2, 1.1},
                      SweepCase{500, 3, 0.0}, SweepCase{500, 4, 1.8},
                      SweepCase{2000, 5, 1.1}));

// Skew knob actually controls skew: higher exponent → hotter hottest key.
TEST(GeneratorSkewTest, SkewKnobIsMonotone) {
  auto max_freq_at = [](double skew) {
    TpchConfig cfg;
    cfg.num_orders = 2000;
    cfg.reference_skew = skew;
    TpchDataset data(cfg);
    return data.lineitem().MaxFrequency("l_suppkey");
  };
  size_t uniform = max_freq_at(0.0);
  size_t skewed = max_freq_at(1.5);
  EXPECT_GT(skewed, uniform * 2);
}

}  // namespace
}  // namespace upa::tpch
