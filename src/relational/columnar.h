// Columnar storage + vectorized relational execution.
//
// The row interpreter (executor.cpp) pays a heap-backed std::variant per
// cell, a std::function call per row, and whole-row copies per operator.
// This layer is the batch-at-a-time cure (cf. HDK/DuckDB-style executors):
//
//   * ColumnarTable — one typed contiguous vector per column (int64_t,
//     double, or dictionary-encoded strings with an *order-preserving*
//     dictionary, so code comparisons implement string comparisons). Built
//     once per Table and cached (Table::Columnar()).
//   * Late materialization — a relation in flight is a set of source
//     ColumnarTables plus one row-index vector per source; filters and
//     joins only re-index, they never copy cell data. The private table's
//     include/exclude/replace options are plain index vectors, and
//     provenance *is* the private source's row-index column.
//   * Batch kernels (kernels.h) — predicates evaluate into selection
//     vectors, numeric projections into contiguous double buffers; no
//     per-row std::function dispatch, no variant access in inner loops.
//   * Deterministic parallelism — operators run per fixed-size batch on
//     the engine ThreadPool (chunk boundaries depend only on row count),
//     and every aggregate goes through ExactSum (common/exact_sum.h), so
//     results are bit-identical to the row oracle for any pool size. The
//     differential harness (tests/relational_columnar_test.cpp) asserts
//     exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/context.h"
#include "relational/executor.h"
#include "relational/plan.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace upa::rel {

struct CompiledExpr;  // kernels.h (which includes this header)

/// Selection / row-index vector: positions are uint32 (tables are checked
/// to fit; 4B rows ought to be enough for one in-memory partition).
using SelVector = std::vector<uint32_t>;

/// Rows per columnar fragment. Initialized once from UPA_FRAGMENT_ROWS
/// (default 65536); SetDefaultFragmentRows overrides it (tests and benches
/// sweep fragment sizes — results are bit-identical across all of them,
/// only skipping effectiveness and scheduling granularity change).
size_t DefaultFragmentRows();
void SetDefaultFragmentRows(size_t rows);  // 0 → re-read the environment

/// Per-fragment, per-column zone map entry. `numeric` bounds are over the
/// kernel's value domain (int cells compared as double, exactly like
/// NumCmpFilter's casts), `code` bounds over dictionary codes (the
/// dictionary is order-preserving, so code order == string order). A
/// column whose cells defeat interval reasoning (NaN) publishes no bounds.
struct FragmentColStats {
  bool numeric_valid = false;
  double min = 0.0;
  double max = 0.0;
  bool codes_valid = false;
  uint32_t min_code = 0;
  uint32_t max_code = 0;
};

/// One fragment of a ColumnarTable: a contiguous row range plus the zone
/// maps filters consult to skip it and the payload bytes the buffer
/// manager accounts for it. Fragments are views — the column payloads stay
/// physically contiguous, so late-materialized row ids keep O(1) access.
struct FragmentInfo {
  uint32_t begin_row = 0;
  uint32_t end_row = 0;
  /// Payload bytes of this row range (typed cells + identity entries;
  /// the shared dictionary is accounted once at the table level).
  size_t bytes = 0;
  std::vector<FragmentColStats> cols;

  uint32_t num_rows() const { return end_row - begin_row; }
};

/// One typed column. Exactly one payload vector is populated, chosen by
/// the *actual* cell types (not the declared schema type): all-int64 cells
/// make an int column even under a double-declared schema, so join keys
/// behave exactly like the row oracle's strict AsInt accessor.
struct Column {
  ValueType type = ValueType::kInt;
  std::vector<int64_t> ints;       // type == kInt
  std::vector<double> doubles;     // type == kDouble
  std::vector<uint32_t> codes;     // type == kString: index into *dict
  /// Sorted (order-preserving) dictionary: code order == string order.
  std::shared_ptr<const std::vector<std::string>> dict;
};

class ColumnarTable {
 public:
  /// Builds the columnar form of `rows` against `schema`, partitioned into
  /// fragments of `fragment_rows` rows (0 → DefaultFragmentRows()). Aborts
  /// on columns mixing string and numeric cells (the row store tolerates
  /// them lazily; columnar storage is typed per column).
  static std::shared_ptr<const ColumnarTable> Build(
      Schema schema, const std::vector<Row>& rows, size_t fragment_rows = 0);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Fragment directory: ceil(num_rows / fragment_rows) contiguous row
  /// ranges with zone maps (empty for an empty table).
  const std::vector<FragmentInfo>& fragments() const { return fragments_; }
  size_t fragment_rows() const { return fragment_rows_; }

  /// Bytes this materialized form holds resident: Σ fragment payloads plus
  /// the dictionaries. Deterministic (a function of the data, not of
  /// allocator state), so budget tests can assert on it exactly.
  size_t resident_bytes() const { return resident_bytes_; }

  /// Shared identity row-index vector [0, num_rows) — the row_ids of a
  /// full scan, shared across every scan of this table.
  const std::shared_ptr<const SelVector>& identity() const {
    return identity_;
  }

  /// Serializes the typed payloads to `path` (fragment-recoverable binary
  /// layout). A reload via LoadSpill reproduces this table bit-for-bit —
  /// doubles round-trip as raw IEEE bytes, codes and dictionaries exactly.
  Status SpillTo(const std::string& path) const;

  /// Reloads a spilled table. The fragment directory is recomputed from
  /// the payloads with `fragment_rows` (same pure function Build uses), so
  /// a spill written under one fragment size reloads under any other.
  static Result<std::shared_ptr<const ColumnarTable>> LoadSpill(
      const std::string& path, Schema schema, size_t fragment_rows = 0);

 private:
  ColumnarTable() = default;

  /// Rebuilds fragments_/identity_/resident_bytes_ from the typed columns
  /// (shared by Build and LoadSpill so both paths agree exactly).
  void FinishBuild(size_t fragment_rows);

  Schema schema_;
  size_t num_rows_ = 0;
  size_t fragment_rows_ = 0;
  size_t resident_bytes_ = 0;
  std::vector<Column> columns_;
  std::vector<FragmentInfo> fragments_;
  std::shared_ptr<const SelVector> identity_;
};

/// Zone-map test: true when some row of `table`'s fragment `frag` *might*
/// satisfy `pred` as a filter predicate; false only when provably no row
/// can (so skipping the fragment is output-equivalent to scanning it —
/// including abort behaviour: predicates whose evaluation can abort, e.g.
/// mixed string/numeric ordered comparisons, are never the basis of a
/// skip). `pred` must be compiled against the table's own schema with
/// schema position == physical column position (a bare scan).
bool FragmentCanMatch(const CompiledExpr& pred, const ColumnarTable& table,
                      size_t frag);

/// A scan bound for execution: the columnar form of a catalog table plus
/// the row-index vector the relation starts from (the shared identity, or
/// the private table's include/exclude/replace index surgery). Shared by
/// the interpreted evaluator and the fused engine (relational/fused.h) so
/// both paths read byte-identical inputs through identical cache keys.
struct ScanBinding {
  std::shared_ptr<const ColumnarTable> table;
  std::shared_ptr<const SelVector> row_ids;
  /// True when `row_ids` is provenance: entry p is the private base-row
  /// index relation row p descends from.
  bool is_private = false;
};

/// Resolves `table_name` against the catalog and applies the private-table
/// options exactly like the columnar scan operator (including the block
/// cache for non-private scans when options.use_scan_cache is set).
/// `engine_partitions` must be the resolved parallelism (it is part of the
/// scan cache key); pass 0 to use the context default.
Result<ScanBinding> BindScanSource(engine::ExecContext* ctx,
                                   const Catalog* catalog,
                                   const std::string& table_name,
                                   const ExecOptions& options,
                                   size_t engine_partitions);

/// Executes an Aggregate-rooted plan on the columnar engine. Root/option
/// validation is PlanExecutor::Execute's job; this expects a well-formed
/// root and returns the same statuses as the row oracle for unknown
/// tables/columns/join keys. Results are bit-identical to the row path.
/// Fusible Aggregate(Filter*(Scan)) chains run on the single-pass fused
/// kernels (relational/fused.h) unless the root's FuseMode says otherwise.
Result<ExecResult> ExecuteColumnar(engine::ExecContext* ctx,
                                   const Catalog* catalog,
                                   const PlanPtr& plan,
                                   const ExecOptions& options);

}  // namespace upa::rel
