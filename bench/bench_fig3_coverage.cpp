// Figure 3 reproduction: the outputs of every neighbouring dataset (the
// scatter of Fig 3) against the output range UPA infers at sample sizes
// n ∈ {10², 10³, 10⁴, 10⁵} (the coloured lines), per query.
//
// Paper result shape: at n = 1000 the inferred range covers ≥98.9% of all
// neighbour outputs for eight of the nine queries; TPCH21 is the worst
// (outlier influences from 3 filters + multi-joins are unlikely to be
// sampled and poorly captured by the normal fit) — but the RANGE ENFORCER
// still clamps its release into the inferred range, so iDP is preserved at
// a utility cost.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "upa/runner.h"

int main() {
  using namespace upa;
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner(
      "Figure 3 — neighbour-output coverage of UPA's inferred range", env);

  queries::QuerySuite suite(env.MakeSuiteConfig());
  const std::vector<size_t> sample_sizes = {100, 1000, 10000, 100000};

  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    // Exhaustive neighbours: all removals plus sample_n additions.
    auto gt = suite.ComputeGroundTruth(name, env.sample_n, env.seed);
    if (!gt.ok()) {
      std::fprintf(stderr, "ground truth failed for %s: %s\n", name.c_str(),
                   gt.status().ToString().c_str());
      return 1;
    }
    const auto& outputs = gt.value().neighbour_outputs;

    TablePrinter table({"n", "inferred lo", "inferred hi", "coverage",
                        "GT min", "GT max"});
    for (size_t n : sample_sizes) {
      size_t effective = std::min(n, suite.NumPrivateRecords(name));
      core::UpaConfig cfg = env.MakeUpaConfig();
      cfg.sample_n = effective;
      cfg.add_noise = false;
      core::UpaRunner runner(cfg);
      auto result = runner.Run(suite.MakeInstance(name), env.seed + n);
      if (!result.ok()) {
        std::fprintf(stderr, "UPA failed for %s at n=%zu: %s\n", name.c_str(),
                     n, result.status().ToString().c_str());
        return 1;
      }
      const Interval& range = result.value().out_range;
      double coverage = CoverageFraction(outputs, range.lo, range.hi);
      table.AddRow({std::to_string(n) +
                        (effective < n ? " (capped " +
                                             std::to_string(effective) + ")"
                                       : ""),
                    TablePrinter::FormatDouble(range.lo, 4),
                    TablePrinter::FormatDouble(range.hi, 4),
                    TablePrinter::FormatPercent(coverage, 2),
                    TablePrinter::FormatDouble(gt.value().min_output, 4),
                    TablePrinter::FormatDouble(gt.value().max_output, 4)});
    }
    table.Print("Figure 3 [" + name + "] — " +
                std::to_string(outputs.size()) +
                " neighbouring datasets, f(x)=" +
                TablePrinter::FormatDouble(gt.value().output, 4));
  }
  std::printf("\n(The paper's red lines are the n=1000 rows; blue lines are "
              "the GT min/max columns.)\n");
  return 0;
}
