// Differential testing of PlanExecutor against a deliberately naive
// reference interpreter (nested loops, no engine, no hashing, no
// parallelism) on randomized tables and plans — the executor and the
// reference must agree on every aggregate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/rng.h"
#include "relational/executor.h"
#include "relational/plan.h"

namespace upa::rel {
namespace {

// ---------------------------------------------------------------------------
// Reference interpreter
// ---------------------------------------------------------------------------

struct RefRelation {
  Schema schema;
  std::vector<Row> rows;
};

RefRelation RefEval(const PlanPtr& plan, const Catalog& catalog) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      const Table* t = catalog.at(plan->table);
      return {t->schema(), t->rows()};
    }
    case PlanKind::kFilter: {
      RefRelation child = RefEval(plan->left, catalog);
      auto pred = BindPredicate(plan->predicate, child.schema);
      RefRelation out{child.schema, {}};
      for (const Row& r : child.rows) {
        if (pred(r)) out.rows.push_back(r);
      }
      return out;
    }
    case PlanKind::kJoin: {
      RefRelation l = RefEval(plan->left, catalog);
      RefRelation r = RefEval(plan->right, catalog);
      size_t li = l.schema.IndexOf(plan->left_key);
      size_t ri = r.schema.IndexOf(plan->right_key);
      RefRelation out{Schema::Concat(l.schema, r.schema), {}};
      for (const Row& lr : l.rows) {
        for (const Row& rr : r.rows) {
          if (AsInt(lr[li]) == AsInt(rr[ri])) {
            Row joined = lr;
            joined.insert(joined.end(), rr.begin(), rr.end());
            out.rows.push_back(std::move(joined));
          }
        }
      }
      return out;
    }
    case PlanKind::kAggregate:
      UPA_CHECK_MSG(false, "aggregate below root in reference interpreter");
  }
  return {};
}

double RefAggregate(const PlanPtr& plan, const Catalog& catalog) {
  UPA_CHECK(plan->kind == PlanKind::kAggregate);
  RefRelation rel = RefEval(plan->left, catalog);
  if (plan->agg == AggKind::kCount) {
    return static_cast<double>(rel.rows.size());
  }
  auto value_of = BindNumeric(plan->agg_expr, rel.schema);
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -mn;
  for (const Row& r : rel.rows) {
    double v = value_of(r);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  switch (plan->agg) {
    case AggKind::kSum:
      return sum;
    case AggKind::kAvg:
      return rel.rows.empty() ? 0.0 : sum / rel.rows.size();
    case AggKind::kMin:
      return mn;
    case AggKind::kMax:
      return mx;
    default:
      return 0.0;
  }
}

// ---------------------------------------------------------------------------
// Random table / plan generation
// ---------------------------------------------------------------------------

std::unique_ptr<Table> RandomTable(const std::string& name, size_t rows,
                                   int key_range, Rng& rng) {
  Schema schema({{name + "_k", ValueType::kInt},
                 {name + "_a", ValueType::kInt},
                 {name + "_x", ValueType::kDouble}});
  std::vector<Row> data;
  data.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    data.push_back(Row{
        Value{static_cast<int64_t>(rng.UniformU64(key_range))},
        Value{rng.UniformInt(0, 9)},
        Value{rng.UniformDouble(-5.0, 5.0)},
    });
  }
  return std::make_unique<Table>(name, std::move(schema), std::move(data));
}

ExprPtr RandomPredicate(const std::string& table, Rng& rng) {
  switch (rng.UniformU64(4)) {
    case 0:
      return Lt(Col(table + "_a"), Lit(rng.UniformInt(1, 9)));
    case 1:
      return Ge(Col(table + "_x"), Lit(rng.UniformDouble(-4.0, 4.0)));
    case 2:
      return And(Ge(Col(table + "_a"), Lit(int64_t{2})),
                 Lt(Col(table + "_x"), Lit(2.5)));
    default:
      return Ne(Col(table + "_a"), Lit(rng.UniformInt(0, 9)));
  }
}

struct FuzzCase {
  std::unique_ptr<Table> t1, t2;
  Catalog catalog;
  PlanPtr plan;
};

FuzzCase MakeFuzzCase(uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;
  fc.t1 = RandomTable("t1", 30 + rng.UniformU64(40), 12, rng);
  fc.t2 = RandomTable("t2", 20 + rng.UniformU64(30), 12, rng);
  fc.catalog = {{"t1", fc.t1.get()}, {"t2", fc.t2.get()}};

  PlanPtr rel = ScanPlan("t1");
  if (rng.Bernoulli(0.7)) rel = FilterPlan(rel, RandomPredicate("t1", rng));
  if (rng.Bernoulli(0.7)) {
    PlanPtr right = ScanPlan("t2");
    if (rng.Bernoulli(0.5)) {
      right = FilterPlan(right, RandomPredicate("t2", rng));
    }
    rel = JoinPlan(rel, right, "t1_k", "t2_k");
    if (rng.Bernoulli(0.3)) rel = FilterPlan(rel, RandomPredicate("t2", rng));
  }

  switch (rng.UniformU64(5)) {
    case 0:
      fc.plan = CountPlan(rel);
      break;
    case 1:
      fc.plan = SumPlan(rel, Mul(Col("t1_x"), Lit(2.0)));
      break;
    case 2:
      fc.plan = AvgPlan(rel, Col("t1_x"));
      break;
    case 3:
      fc.plan = MinPlan(rel, Col("t1_x"));
      break;
    default:
      fc.plan = MaxPlan(rel, Add(Col("t1_x"), Col("t1_a")));
      break;
  }
  return fc;
}

// ---------------------------------------------------------------------------

class ExecutorFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFuzzSweep, ExecutorMatchesReference) {
  FuzzCase fc = MakeFuzzCase(GetParam());
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 3});
  PlanExecutor executor(&ctx, &fc.catalog);

  auto result = executor.Execute(fc.plan);
  double reference = 0.0;
  bool ref_empty = false;
  // The executor rejects Avg/Min/Max over empty relations; mirror that.
  if (fc.plan->agg != AggKind::kCount && fc.plan->agg != AggKind::kSum) {
    RefRelation rel = RefEval(fc.plan->left, fc.catalog);
    ref_empty = rel.rows.empty();
  }
  if (ref_empty) {
    EXPECT_FALSE(result.ok()) << PlanToString(fc.plan);
    return;
  }
  reference = RefAggregate(fc.plan, fc.catalog);
  ASSERT_TRUE(result.ok()) << PlanToString(fc.plan) << ": "
                           << result.status().ToString();
  EXPECT_NEAR(result.value().output, reference,
              1e-9 * std::max(1.0, std::fabs(reference)))
      << PlanToString(fc.plan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzzSweep,
                         ::testing::Range<uint64_t>(0, 40));

// Contribution fuzz: for additive aggregates, the executor's per-record
// contributions must equal reference re-execution deltas.
class ContributionFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContributionFuzzSweep, ContributionsMatchReferenceDeltas) {
  Rng rng(GetParam() + 500);
  FuzzCase fc;
  fc.t1 = RandomTable("t1", 25, 8, rng);
  fc.t2 = RandomTable("t2", 15, 8, rng);
  fc.catalog = {{"t1", fc.t1.get()}, {"t2", fc.t2.get()}};
  PlanPtr rel = JoinPlan(FilterPlan(ScanPlan("t1"),
                                    Ge(Col("t1_a"), Lit(int64_t{2}))),
                         ScanPlan("t2"), "t1_k", "t2_k");
  fc.plan = rng.Bernoulli(0.5) ? CountPlan(rel)
                               : SumPlan(rel, Col("t2_x"));

  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});
  PlanExecutor executor(&ctx, &fc.catalog);
  ExecOptions opts;
  opts.private_table = "t1";
  opts.track_contributions = true;
  auto full = executor.Execute(fc.plan, opts);
  ASSERT_TRUE(full.ok());

  double full_ref = RefAggregate(fc.plan, fc.catalog);
  for (size_t i = 0; i < fc.t1->NumRows(); ++i) {
    // Reference: rebuild t1 without row i.
    std::vector<Row> rows = fc.t1->rows();
    rows.erase(rows.begin() + static_cast<long>(i));
    Table without("t1", fc.t1->schema(), std::move(rows));
    Catalog cat{{"t1", &without}, {"t2", fc.t2.get()}};
    double ref_without = RefAggregate(fc.plan, cat);

    auto it = full.value().contributions.find(i);
    double influence = it == full.value().contributions.end() ? 0.0
                                                              : it->second;
    EXPECT_NEAR(full_ref - influence, ref_without, 1e-9)
        << "row " << i << " of " << PlanToString(fc.plan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContributionFuzzSweep,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace upa::rel
