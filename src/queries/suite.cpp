#include "queries/suite.h"

#include <algorithm>

#include "engine/dataset.h"

namespace upa::queries {

QuerySuite::QuerySuite(SuiteConfig config) : config_(config) {
  ctx_ = std::make_unique<engine::ExecContext>(engine::ExecConfig{
      .threads = config_.threads,
      .default_partitions = config_.engine_partitions});
  tpch_ = std::make_unique<tpch::TpchDataset>(config_.tpch);
  ml_ = std::make_unique<ml::MlDataset>(config_.ml);
  catalog_ = tpch_->catalog();
  executor_ = std::make_shared<const rel::PlanExecutor>(ctx_.get(), &catalog_);

  for (tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    info_[q.name] = QueryInfo{q.name, q.query_type, q.private_table,
                              q.flex_supported, /*is_ml=*/false};
    tpch_queries_.emplace(q.name, std::move(q));
  }
  info_["KMeans"] =
      QueryInfo{"KMeans", "Machine Learning", "", false, /*is_ml=*/true};
  info_["LinearRegression"] = QueryInfo{"LinearRegression", "Machine Learning",
                                        "", false, /*is_ml=*/true};

  // Fixed ML query parameters, derived deterministically from the dataset
  // (the paper's queries likewise carry their hyper-parameters as part of
  // the query definition).
  linreg_spec_.w0.assign(config_.ml.dims, 0.0);
  linreg_spec_.b0 = 0.0;
  linreg_spec_.learning_rate = 0.1;
  kmeans_spec_.centroids = ml::LloydIterations(
      *ml_->points(),
      ml::InitCentroids(*ml_->points(), config_.ml.mixture_components), 2);
}

const std::vector<std::string>& QuerySuite::AllQueryNames() {
  static const std::vector<std::string> kNames = {
      "TPCH1",  "TPCH4",  "TPCH13",           "TPCH16", "TPCH21",
      "KMeans", "LinearRegression", "TPCH6",  "TPCH11"};
  return kNames;
}

const QueryInfo& QuerySuite::Info(const std::string& name) const {
  auto it = info_.find(name);
  UPA_CHECK_MSG(it != info_.end(), "unknown query: " + name);
  return it->second;
}

const tpch::TpchQuery& QuerySuite::PlanFor(const std::string& name) const {
  auto it = tpch_queries_.find(name);
  UPA_CHECK_MSG(it != tpch_queries_.end(), "not a TPC-H query: " + name);
  return it->second;
}

core::SimpleQuerySpec<ml::MlPoint> QuerySuite::MlSpecFor(
    const std::string& name, const ChurnedData* churn) const {
  std::shared_ptr<const std::vector<ml::MlPoint>> records =
      churn != nullptr ? churn->ml_points : nullptr;
  if (name == "LinearRegression") {
    return ml::MakeLinRegSpec(ctx_.get(), *ml_, linreg_spec_, records);
  }
  if (name == "KMeans") {
    return ml::MakeKMeansSpec(ctx_.get(), *ml_, kmeans_spec_, records);
  }
  UPA_CHECK_MSG(false, "not an ML query: " + name);
  return {};
}

core::QueryInstance QuerySuite::MakeInstance(const std::string& name,
                                             const ChurnedData* churn) const {
  const QueryInfo& info = Info(name);
  if (info.is_ml) {
    return core::MakeSimpleQuery(MlSpecFor(name, churn));
  }
  return MakePlanQuery(ctx_.get(), executor_, tpch_.get(), PlanFor(name),
                       churn != nullptr ? churn->plan_rows : nullptr);
}

double QuerySuite::RunNative(const std::string& name,
                             const ChurnedData* churn) const {
  const QueryInfo& info = Info(name);
  if (info.is_ml) {
    core::SimpleQuerySpec<ml::MlPoint> spec = MlSpecFor(name, churn);
    auto reduced =
        engine::Dataset<ml::MlPoint>::FromVector(ctx_.get(), *spec.records)
            .Map(spec.map_record)
            .Reduce(
                [](core::Vec a, const core::Vec& b) {
                  return core::VecSum::Combine(std::move(a), b);
                },
                core::VecSum::Identity());
    core::Vec posted = spec.post ? spec.post(reduced) : reduced;
    return spec.scalarize ? spec.scalarize(posted) : core::ScalarOf(posted);
  }

  const tpch::TpchQuery& query = PlanFor(name);
  rel::ExecOptions opts;
  // Vanilla Spark reads its input fresh — the native baseline must not
  // benefit from UPA's block cache.
  opts.use_scan_cache = false;
  if (churn != nullptr) {
    opts.private_table = query.private_table;
    opts.replace_private_rows = churn->plan_rows.get();
  }
  Result<rel::ExecResult> r = executor_->Execute(query.plan, opts);
  UPA_CHECK_MSG(r.ok(), "native run failed: " + r.status().ToString());
  return r.value().output;
}

Result<gt::GroundTruth> QuerySuite::ComputeGroundTruth(
    const std::string& name, size_t n_additions, uint64_t seed,
    const ChurnedData* churn) const {
  const QueryInfo& info = Info(name);
  if (info.is_ml) {
    return gt::ExactSimpleGroundTruth(MlSpecFor(name, churn), n_additions,
                                      seed);
  }
  const tpch::TpchQuery& query = PlanFor(name);
  const std::vector<rel::Row>* replacement =
      churn != nullptr ? churn->plan_rows.get() : nullptr;
  return gt::ExactPlanGroundTruth(
      *executor_, query.plan, query.private_table,
      NumPrivateRecords(name, churn),
      [this, &query](Rng& rng) {
        return tpch_->SampleRow(query.private_table, rng);
      },
      n_additions, seed, replacement);
}

flex::FlexResult QuerySuite::RunFlex(const std::string& name) const {
  const QueryInfo& info = Info(name);
  if (info.is_ml) {
    flex::FlexResult r;
    r.supported = false;
    r.unsupported_reason =
        "FLEX operates on SQL relational algebra; user-defined MapReduce "
        "queries are outside its model";
    return r;
  }
  return flex::AnalyzeFlex(PlanFor(name).plan, catalog_);
}

ChurnedData QuerySuite::MakeChurn(const std::string& name, size_t remove_count,
                                  uint64_t churn_seed) const {
  const QueryInfo& info = Info(name);
  ChurnedData churn;
  churn.removed = remove_count;
  Rng rng = Rng::ForStream(churn_seed, "churn/" + name);
  if (info.is_ml) {
    const std::vector<ml::MlPoint>& points = *ml_->points();
    UPA_CHECK(remove_count <= points.size());
    std::vector<size_t> removed =
        rng.SampleWithoutReplacement(points.size(), remove_count);
    auto kept = std::make_shared<std::vector<ml::MlPoint>>();
    kept->reserve(points.size() - remove_count);
    size_t cursor = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      if (cursor < removed.size() && removed[cursor] == i) {
        ++cursor;
        continue;
      }
      kept->push_back(points[i]);
    }
    churn.ml_points = std::move(kept);
    return churn;
  }
  const std::string& table = info.private_table;
  size_t n = tpch_->table(table).NumRows();
  UPA_CHECK(remove_count <= n);
  std::vector<size_t> removed =
      rng.SampleWithoutReplacement(n, remove_count);
  churn.plan_rows = std::make_shared<const std::vector<rel::Row>>(
      tpch_->RowsWithout(table, removed));
  return churn;
}

size_t QuerySuite::NumPrivateRecords(const std::string& name,
                                     const ChurnedData* churn) const {
  const QueryInfo& info = Info(name);
  if (info.is_ml) {
    if (churn != nullptr && churn->ml_points != nullptr) {
      return churn->ml_points->size();
    }
    return ml_->points()->size();
  }
  if (churn != nullptr && churn->plan_rows != nullptr) {
    return churn->plan_rows->size();
  }
  return tpch_->table(info.private_table).NumRows();
}

}  // namespace upa::queries
