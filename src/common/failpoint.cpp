#include "common/failpoint.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "common/rng.h"

namespace upa {
namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

Status ParseStatusCode(const std::string& name, StatusCode* out) {
  static const std::pair<const char*, StatusCode> kCodes[] = {
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"not_found", StatusCode::kNotFound},
      {"unsupported", StatusCode::kUnsupported},
      {"failed_precondition", StatusCode::kFailedPrecondition},
      {"out_of_range", StatusCode::kOutOfRange},
      {"internal", StatusCode::kInternal},
      {"resource_exhausted", StatusCode::kResourceExhausted},
      {"cancelled", StatusCode::kCancelled},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
  };
  std::string lower = ToLower(name);
  for (const auto& [text, code] : kCodes) {
    if (lower == text) {
      *out = code;
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown status code '" + name + "'");
}

/// Splits "name(args)" into name and args ("" when no parens).
Status SplitCall(const std::string& text, std::string* name,
                 std::string* args) {
  size_t open = text.find('(');
  if (open == std::string::npos) {
    *name = text;
    args->clear();
    return Status::Ok();
  }
  if (text.back() != ')') {
    return Status::InvalidArgument("unbalanced parens in '" + text + "'");
  }
  *name = text.substr(0, open);
  *args = text.substr(open + 1, text.size() - open - 2);
  return Status::Ok();
}

Status ParsePositiveU64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v == 0) {
    return Status::InvalidArgument("expected positive integer, got '" + text +
                                   "'");
  }
  *out = v;
  return Status::Ok();
}

Status ParseNonNegativeDouble(const std::string& text, double* out) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0) {
    return Status::InvalidArgument("expected non-negative number, got '" +
                                   text + "'");
  }
  *out = v;
  return Status::Ok();
}

}  // namespace

Failpoints& Failpoints::Instance() {
  // First use loads UPA_FAILPOINTS so every binary honours the env var
  // without per-main() wiring. A malformed schedule aborts: silently
  // dropping it would report a chaos drill as passing without ever
  // injecting a fault.
  static Failpoints* instance = [] {
    auto* fp = new Failpoints();
    Status env = fp->LoadFromEnv();
    if (!env.ok()) {
      std::fprintf(stderr, "UPA_FAILPOINTS: %s\n", env.ToString().c_str());
      std::abort();
    }
    return fp;
  }();
  return *instance;
}

Status Failpoints::ParseSpec(const std::string& text, Spec* out) {
  Spec spec;
  size_t colon = text.find(':');
  std::string action_text =
      colon == std::string::npos ? text : text.substr(0, colon);
  std::string name, args;
  UPA_RETURN_IF_ERROR(SplitCall(action_text, &name, &args));
  if (name == "error") {
    spec.action = Action::kError;
    if (!args.empty()) {
      size_t comma = args.find(',');
      std::string code = comma == std::string::npos ? args
                                                    : args.substr(0, comma);
      UPA_RETURN_IF_ERROR(ParseStatusCode(code, &spec.error_code));
      if (comma != std::string::npos) {
        spec.error_message = args.substr(comma + 1);
      }
    }
  } else if (name == "delay") {
    spec.action = Action::kDelay;
    if (args.empty()) {
      return Status::InvalidArgument("delay needs a millisecond argument");
    }
    UPA_RETURN_IF_ERROR(ParseNonNegativeDouble(args, &spec.delay_millis));
  } else if (name == "abort") {
    spec.action = Action::kAbort;
    if (!args.empty()) {
      return Status::InvalidArgument("abort takes no arguments");
    }
  } else if (name == "kill") {
    spec.action = Action::kKill;
    if (!args.empty()) {
      return Status::InvalidArgument("kill takes no arguments");
    }
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + name + "'");
  }

  if (colon != std::string::npos) {
    std::string trigger_text = text.substr(colon + 1);
    UPA_RETURN_IF_ERROR(SplitCall(trigger_text, &name, &args));
    if (name == "every") {
      spec.trigger = Trigger::kEveryN;
      if (args.empty()) {
        return Status::InvalidArgument("every needs a count argument");
      }
      UPA_RETURN_IF_ERROR(ParsePositiveU64(args, &spec.every_n));
    } else if (name == "prob") {
      spec.trigger = Trigger::kProbability;
      size_t comma = args.find(',');
      std::string p = comma == std::string::npos ? args : args.substr(0, comma);
      UPA_RETURN_IF_ERROR(ParseNonNegativeDouble(p, &spec.probability));
      if (spec.probability > 1.0) {
        return Status::InvalidArgument("probability must be in [0, 1]");
      }
      if (comma != std::string::npos) {
        std::string seed_text = args.substr(comma + 1);
        char* end = nullptr;
        spec.seed = std::strtoull(seed_text.c_str(), &end, 10);
        if (end == seed_text.c_str() || *end != '\0') {
          return Status::InvalidArgument("bad prob seed '" + seed_text + "'");
        }
      }
    } else {
      return Status::InvalidArgument("unknown failpoint trigger '" + name +
                                     "'");
    }
  }
  *out = spec;
  return Status::Ok();
}

Status Failpoints::Activate(const std::string& site, const std::string& spec) {
  Spec parsed;
  UPA_RETURN_IF_ERROR(ParseSpec(spec, &parsed));
  Activate(site, parsed);
  return Status::Ok();
}

void Failpoints::Activate(const std::string& site, const Spec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sites_[site];
  if (slot == nullptr) {
    active_count_.fetch_add(1, std::memory_order_relaxed);
    slot = std::make_shared<Site>();
  }
  slot->spec = spec;
  slot->hits.store(0, std::memory_order_relaxed);
  slot->fires.store(0, std::memory_order_relaxed);
}

void Failpoints::Deactivate(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(site) > 0) {
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DeactivateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  active_count_.fetch_sub(static_cast<int>(sites_.size()),
                          std::memory_order_relaxed);
  sites_.clear();
}

Status Failpoints::LoadFromEnv(const char* env_value) {
  const char* raw = env_value != nullptr ? env_value
                                         : std::getenv("UPA_FAILPOINTS");
  if (raw == nullptr || *raw == '\0') return Status::Ok();
  std::string text(raw);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t semi = text.find(';', pos);
    std::string entry = text.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? text.size() : semi + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("UPA_FAILPOINTS entry '" + entry +
                                     "' missing '='");
    }
    UPA_RETURN_IF_ERROR(Activate(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::Ok();
}

Failpoints::SiteStats Failpoints::StatsFor(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return {};
  return {it->second->hits.load(std::memory_order_relaxed),
          it->second->fires.load(std::memory_order_relaxed)};
}

Status Failpoints::Evaluate(const char* site) {
  Spec spec;
  std::shared_ptr<Site> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::Ok();
    entry = it->second;
    spec = entry->spec;
  }
  // Hit indices start at 1: every(n) fires on hits n, 2n, ...; prob(p, s)
  // fires iff SplitMix64(s ^ hit) maps below p — deterministic per hit.
  uint64_t hit = entry->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  if (spec.trigger == Trigger::kEveryN) {
    fire = (hit % spec.every_n) == 0;
  } else {
    uint64_t mixed = SplitMix64(spec.seed ^ hit).Next();
    double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
    fire = u < spec.probability;
  }
  if (!fire) return Status::Ok();
  entry->fires.fetch_add(1, std::memory_order_relaxed);

  switch (spec.action) {
    case Action::kError: {
      std::string msg = spec.error_message.empty()
                            ? "injected fault at '" + std::string(site) + "'"
                            : spec.error_message;
      return Status(spec.error_code, std::move(msg));
    }
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          spec.delay_millis));
      return Status::Ok();
    case Action::kAbort:
      std::fprintf(stderr, "failpoint '%s': injected abort (hit %llu)\n",
                   site, static_cast<unsigned long long>(hit));
      std::abort();
    case Action::kKill:
      // SIGKILL leaves no chance for atexit handlers or flushes — the
      // closest in-process stand-in for machine loss that crash-recovery
      // drills can schedule deterministically.
      std::fprintf(stderr, "failpoint '%s': injected SIGKILL (hit %llu)\n",
                   site, static_cast<unsigned long long>(hit));
      std::fflush(stderr);
      ::kill(::getpid(), SIGKILL);
      std::abort();  // unreachable
  }
  return Status::Ok();
}

}  // namespace upa
