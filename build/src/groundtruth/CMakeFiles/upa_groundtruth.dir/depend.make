# Empty dependencies file for upa_groundtruth.
# This may be replaced when dependencies are built.
