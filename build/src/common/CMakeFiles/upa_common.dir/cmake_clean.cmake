file(REMOVE_RECURSE
  "CMakeFiles/upa_common.dir/env.cpp.o"
  "CMakeFiles/upa_common.dir/env.cpp.o.d"
  "CMakeFiles/upa_common.dir/logging.cpp.o"
  "CMakeFiles/upa_common.dir/logging.cpp.o.d"
  "CMakeFiles/upa_common.dir/normal_fit.cpp.o"
  "CMakeFiles/upa_common.dir/normal_fit.cpp.o.d"
  "CMakeFiles/upa_common.dir/rng.cpp.o"
  "CMakeFiles/upa_common.dir/rng.cpp.o.d"
  "CMakeFiles/upa_common.dir/stats.cpp.o"
  "CMakeFiles/upa_common.dir/stats.cpp.o.d"
  "CMakeFiles/upa_common.dir/status.cpp.o"
  "CMakeFiles/upa_common.dir/status.cpp.o.d"
  "CMakeFiles/upa_common.dir/table_printer.cpp.o"
  "CMakeFiles/upa_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/upa_common.dir/thread_pool.cpp.o"
  "CMakeFiles/upa_common.dir/thread_pool.cpp.o.d"
  "libupa_common.a"
  "libupa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
