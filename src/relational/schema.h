// Schema and Row for the relational layer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace upa::rel {

/// A row is a flat cell vector positioned against a Schema.
using Row = std::vector<Value>;

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Position of `name`, or nullopt.
  std::optional<size_t> Find(const std::string& name) const;
  /// Position of `name`; aborts if absent (schema bugs are programming
  /// errors, not data errors).
  size_t IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name).has_value(); }

  /// Concatenation for joins. Column names must stay unique (TPC-H's
  /// l_/o_/p_ prefixes guarantee this).
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace upa::rel
