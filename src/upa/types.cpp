#include "upa/types.h"

#include <cmath>

namespace upa::core {

double L2Norm(const Vec& v) {
  double ss = 0.0;
  for (double x : v) ss += x * x;
  return std::sqrt(ss);
}

double L1Distance(const Vec& a, const Vec& b) {
  const Vec& longer = a.size() >= b.size() ? a : b;
  const Vec& shorter = a.size() >= b.size() ? b : a;
  UPA_CHECK_MSG(shorter.empty() || shorter.size() == longer.size(),
                "L1Distance requires equal dimensions (or one identity)");
  double d = 0.0;
  for (size_t i = 0; i < longer.size(); ++i) {
    double s = i < shorter.size() ? shorter[i] : 0.0;
    d += std::fabs(longer[i] - s);
  }
  return d;
}

}  // namespace upa::core
