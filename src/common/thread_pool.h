// Fixed-size thread pool with a parallel-for helper.
//
// The engine schedules one task per dataset partition on this pool, the way
// Spark schedules one task per RDD partition on its executors. The pool size
// defaults to the hardware concurrency and can be overridden (the CI box for
// this repo has a single core; correctness does not depend on parallelism).
//
// ParallelFor / ParallelForChunks / ParallelForMorsels are safe to call from
// inside a pool worker: while a caller waits for its helpers it help-runs
// queued tasks instead of blocking, so nested parallelism cannot deadlock
// even on a 1-thread pool.
//
// ParallelForChunks splits [0, n) statically into ~thread_count chunks; one
// slow chunk stalls the whole call (bad under skew). ParallelForMorsels is
// the load-balanced alternative: workers pull fixed-grain morsels off a
// shared atomic cursor, so a worker stuck on a heavy morsel only delays its
// own morsel while the others drain the rest. Morsel boundaries depend only
// on (n, grain) — never on the pool size or pull order — so callers writing
// disjoint slots per index get bit-identical results at any thread count.
//
// Cooperative cancellation: all helpers poll the caller's CancelScope
// token at chunk/morsel boundaries — once the token trips, not-yet-started
// work is skipped (the caller converts the trip into kCancelled /
// kDeadlineExceeded and discards the partial result). See common/cancel.h.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace upa {

class ThreadPool {
 public:
  /// threads == 0 → std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), partitioned into ~thread_count chunks, and
  /// wait for all of them. Exceptions in fn propagate to the caller.
  /// Returns the number of chunk tasks the work was split into (1 when run
  /// inline). May be called from inside a pool worker (see file comment).
  size_t ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Run fn(chunk_begin, chunk_end) over contiguous chunks and wait.
  /// Returns the number of chunk tasks (1 when run inline).
  size_t ParallelForChunks(size_t n,
                           const std::function<void(size_t, size_t)>& fn);

  /// Per-morsel wall-clock samples from one ParallelForMorsels call, for
  /// the engine's duration histograms and the max/mean imbalance gauge.
  struct MorselTimings {
    std::vector<double> seconds;  // one entry per executed morsel
    double SumSeconds() const;
    double MaxSeconds() const;
    /// max/mean over the executed morsels (1.0 when <= 1 morsel ran): how
    /// much longer the slowest morsel ran than the average one. With static
    /// chunking this is the stall factor of the whole phase; with morsel
    /// stealing it only bounds the tail of one worker.
    double Imbalance() const;
  };

  /// Morsel-driven parallel-for: workers (plus the calling thread) pull
  /// morsels [i, min(n, i+grain)) off a shared atomic cursor and run
  /// fn(begin, end) on each until the range is drained. grain==0 picks a
  /// default that yields several morsels per worker. Exceptions propagate
  /// after every helper finished; `timings`, when non-null, receives one
  /// duration sample per executed morsel. Returns the number of morsels
  /// the range divides into. Safe to call from inside a pool worker.
  size_t ParallelForMorsels(size_t n, size_t grain,
                            const std::function<void(size_t, size_t)>& fn,
                            MorselTimings* timings = nullptr);

 private:
  void WorkerLoop();
  /// Pops and runs one queued task if any; returns false when the queue is
  /// empty. Used by waiters to make progress instead of blocking (the
  /// help-run loop that makes nested ParallelFor safe).
  bool TryRunOneTask();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace upa
