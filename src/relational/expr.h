// Scalar expression trees (the SparkSQL expression subset the evaluated
// TPC-H queries need) and their compilation against a Schema.
//
// Expressions reference columns by name; Bind() resolves names to positions
// once and returns a closure evaluated per row — the executor never does
// name lookups in its inner loops.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace upa::rel {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

std::string BinOpName(BinOp op);

class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kBinary, kNot, kInSet };

  // -- Factories ----------------------------------------------------------
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr inner);
  /// `lhs IN (set...)`.
  static ExprPtr InSet(ExprPtr lhs, std::vector<Value> set);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  BinOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  const std::vector<Value>& set() const { return set_; }

  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  std::string column_name_;
  Value literal_ = int64_t{0};
  BinOp op_ = BinOp::kAdd;
  ExprPtr lhs_, rhs_;
  std::vector<Value> set_;
};

/// A compiled expression: evaluate against one row.
using BoundExpr = std::function<Value(const Row&)>;

/// Compile `expr` against `schema`. Aborts on unknown columns.
/// Boolean results are int64 0/1.
BoundExpr Bind(const ExprPtr& expr, const Schema& schema);

/// Compile and require a boolean-ish predicate (any numeric non-zero is
/// true).
std::function<bool(const Row&)> BindPredicate(const ExprPtr& expr,
                                              const Schema& schema);

/// Compile and require a numeric result.
std::function<double(const Row&)> BindNumeric(const ExprPtr& expr,
                                              const Schema& schema);

/// True if every column the expression references exists in the schema
/// (nullptr expressions trivially qualify).
bool ExprColumnsExist(const ExprPtr& expr, const Schema& schema);

/// Structural fingerprint: kind, operators, column names and *exact*
/// literal bit patterns (not the lossy ToString rendering). Structurally
/// equal trees always collide; unequal literals never do. Used for
/// plan-cache keys, where pointer identity is unsafe (a freed-and-
/// reallocated Expr could alias a stale entry).
uint64_t ExprFingerprint(const ExprPtr& expr);

// -- Terse builder helpers (the query-definition DSL) ----------------------
inline ExprPtr Col(std::string name) { return Expr::Column(std::move(name)); }
inline ExprPtr Lit(int64_t v) { return Expr::Literal(Value{v}); }
inline ExprPtr Lit(double v) { return Expr::Literal(Value{v}); }
inline ExprPtr Lit(const char* v) { return Expr::Literal(Value{std::string(v)}); }
inline ExprPtr Lit(std::string v) { return Expr::Literal(Value{std::move(v)}); }
inline ExprPtr Add(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kAdd, std::move(a), std::move(b)); }
inline ExprPtr Sub(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kSub, std::move(a), std::move(b)); }
inline ExprPtr Mul(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kMul, std::move(a), std::move(b)); }
inline ExprPtr Div(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kDiv, std::move(a), std::move(b)); }
inline ExprPtr Eq(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kEq, std::move(a), std::move(b)); }
inline ExprPtr Ne(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kNe, std::move(a), std::move(b)); }
inline ExprPtr Lt(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kLt, std::move(a), std::move(b)); }
inline ExprPtr Le(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kLe, std::move(a), std::move(b)); }
inline ExprPtr Gt(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kGt, std::move(a), std::move(b)); }
inline ExprPtr Ge(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kGe, std::move(a), std::move(b)); }
inline ExprPtr And(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kAnd, std::move(a), std::move(b)); }
inline ExprPtr Or(ExprPtr a, ExprPtr b) { return Expr::Binary(BinOp::kOr, std::move(a), std::move(b)); }
inline ExprPtr Not(ExprPtr a) { return Expr::Not(std::move(a)); }
inline ExprPtr In(ExprPtr a, std::vector<Value> set) {
  return Expr::InSet(std::move(a), std::move(set));
}

}  // namespace upa::rel
