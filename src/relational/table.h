// Table: a named, schema'd row store plus the column statistics FLEX's
// static analysis consumes (max join-key frequency per column).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/schema.h"

namespace upa::rel {

class Table {
 public:
  Table(std::string name, Schema schema, std::vector<Row> rows);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  /// Frequency of the most frequent value in `column` — the dataset
  /// metadata FLEX multiplies across joins (paper §II-B). Computed on
  /// first use and cached (metadata maintenance, as a real catalog would).
  size_t MaxFrequency(const std::string& column) const;

  /// Number of distinct values in `column`.
  size_t DistinctCount(const std::string& column) const;

 private:
  struct ColumnStats {
    size_t max_frequency = 0;
    size_t distinct = 0;
  };
  const ColumnStats& StatsFor(const std::string& column) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  mutable std::map<std::string, ColumnStats> stats_cache_;
};

/// Name → table lookup used by plan execution and FLEX analysis.
using Catalog = std::map<std::string, const Table*>;

}  // namespace upa::rel
