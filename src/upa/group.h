// Group-privacy extension (paper §VI-E, "future work"): protect a group of
// up to k individuals rather than one, by reusing the sampled-neighbour
// influences Algorithm 1 already computed.
//
// For the commutative-associative (additive) reducers UPA targets,
// removing a group G changes the reduced value by the sum of the group's
// mapped values, so the largest achievable k-group influence on the output
// is bounded (to first order, and exactly for linear scalarizations) by
// the sum of the k largest single-record influences. The estimator below
// therefore returns Σ of the k largest sampled |f(x) − f(y)| — no extra
// query executions needed, exactly the reuse §VI-E suggests.
//
// The same caveat as single-record inference applies: this is an estimate
// from a sample; enforcement still comes from clamping into the induced
// range.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/normal_fit.h"

namespace upa::core {

struct GroupSensitivityEstimate {
  size_t group_size = 1;
  /// Estimated max |f(x) − f(y)| over datasets y differing from x by up
  /// to `group_size` records.
  double sensitivity = 0.0;
  /// Clamping range for the release (centred on f(x)).
  Interval out_range;
  /// The single-record influences the estimate was built from (sorted
  /// descending, truncated to group_size).
  std::vector<double> top_influences;
};

/// Estimates k-group sensitivity from one UPA run's sampled-neighbour
/// outputs. `f_x` is the query output the neighbours were sampled around
/// (UpaRunResult::raw_output before enforcement; the neighbour list is
/// UpaRunResult::neighbour_outputs). k must be >= 1.
GroupSensitivityEstimate EstimateGroupSensitivity(
    std::span<const double> neighbour_outputs, double f_x, size_t k);

/// Sweep k = 1..max_k (inclusive), reusing one sort of the influences.
std::vector<GroupSensitivityEstimate> GroupSensitivitySweep(
    std::span<const double> neighbour_outputs, double f_x, size_t max_k);

}  // namespace upa::core
