// FLEX baseline (Johnson, Near, Song — VLDB'18), as the paper describes
// and compares against (§II-B):
//
//   * supports only counting queries built from Select/Join/Filter/Count;
//     arithmetic (SUM/AVG) and ML queries are rejected;
//   * infers the local sensitivity of a count-with-joins statically, from
//     dataset metadata only: for each join it multiplies the frequency of
//     the most frequently-occurring item of each of the two join columns,
//     and multiplies across joins;
//   * ignores filters and actual join-key co-occurrence — the two sources
//     of overestimation the paper's Figure 2(a) quantifies.
#pragma once

#include <string>
#include <vector>

#include "relational/plan.h"
#include "relational/table.h"

namespace upa::flex {

struct JoinFactor {
  std::string left_table, left_column;
  std::string right_table, right_column;
  size_t left_max_frequency = 0;
  size_t right_max_frequency = 0;
  /// The factor this join contributes to the sensitivity product.
  double factor() const {
    return static_cast<double>(left_max_frequency) *
           static_cast<double>(right_max_frequency);
  }
};

struct FlexResult {
  bool supported = false;
  std::string unsupported_reason;
  /// Statically inferred local sensitivity (when supported).
  double local_sensitivity = 0.0;
  /// Per-join breakdown of the product.
  std::vector<JoinFactor> joins;
};

/// Statically analyze `plan` against the catalog's column metadata.
FlexResult AnalyzeFlex(const rel::PlanPtr& plan, const rel::Catalog& catalog);

/// FLEX's smooth-sensitivity variant (paper §II-B: "FLEX infers both local
/// sensitivity and smooth sensitivity"). Smooth sensitivity maximizes
/// e^{-βk} · LS(k) over the distance k to the dataset, where FLEX's static
/// local sensitivity at distance k multiplies (max_frequency + k) per join
/// column (k added records can all share the most frequent key).
/// Returns an unsupported FlexResult for non-count queries, like
/// AnalyzeFlex. beta is typically ε / (2 ln(2/δ)).
FlexResult AnalyzeFlexSmooth(const rel::PlanPtr& plan,
                             const rel::Catalog& catalog, double beta,
                             size_t max_distance = 1000);

}  // namespace upa::flex
