// Logical-plan optimizer: predicate pushdown.
//
// The SQL front-end places the whole WHERE clause above the joins;
// PushDownFilters splits it into conjuncts and sinks each one to the
// lowest node whose schema covers its columns (per-table conjuncts reach
// their scans, cross-table conjuncts stay above the join that first joins
// their tables). Semantics are identical for inner-join plans — asserted
// by the optimizer tests against unoptimized execution — while join inputs
// shrink, which is exactly the filter-before-join behaviour the paper's
// TPCH16/TPCH21 overhead discussion depends on.
#pragma once

#include "relational/plan.h"

namespace upa::rel {

/// Returns an equivalent plan with filter conjuncts pushed as deep as
/// their column references allow. The catalog resolves which scan provides
/// which column. Plans without filters are returned unchanged.
PlanPtr PushDownFilters(const PlanPtr& plan, const Catalog& catalog);

/// Splits a predicate into top-level AND conjuncts (exposed for tests).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// All column names referenced by an expression (exposed for tests).
std::vector<std::string> ReferencedColumns(const ExprPtr& expr);

}  // namespace upa::rel
