file(REMOVE_RECURSE
  "CMakeFiles/relational_csv_test.dir/relational_csv_test.cpp.o"
  "CMakeFiles/relational_csv_test.dir/relational_csv_test.cpp.o.d"
  "relational_csv_test"
  "relational_csv_test.pdb"
  "relational_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
