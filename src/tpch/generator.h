// Synthetic TPC-H-like dataset generator.
//
// Substitutes the paper's ~120GB dbgen datasets (DESIGN.md substitutions):
// same schema shape and — what actually matters for sensitivity — join-key
// frequency distributions with controllable skew. Lineitems-per-order,
// parts-per-partsupp and supplier references follow Zipf-ish distributions,
// so some join keys are much more frequent than others; that skew is
// exactly what makes FLEX's max-frequency product overestimate while UPA's
// dynamic analysis stays accurate.
//
// Dates are integer "days since 1992-01-01" in [0, kDateSpanDays).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/table.h"

namespace upa::tpch {

inline constexpr int64_t kDateSpanDays = 2556;  // 7 years, 1992..1998

struct TpchConfig {
  /// Scale driver: everything else derives from the order count.
  size_t num_orders = 10000;
  /// Maximum lineitems per order (Zipf-skewed within [1, max]).
  size_t max_lineitems_per_order = 7;
  /// Zipf exponent for part/supplier reference skew (0 = uniform).
  double reference_skew = 1.1;
  uint64_t seed = 42;

  size_t num_customers() const { return std::max<size_t>(10, num_orders / 10); }
  size_t num_parts() const { return std::max<size_t>(20, num_orders / 5); }
  /// Floor of 25 so round-robin nation assignment covers every nation
  /// (Q11/Q21 filter on specific nations).
  size_t num_suppliers() const { return std::max<size_t>(25, num_orders / 100); }
  static constexpr size_t kNumNations = 25;
};

/// The generated database: seven tables + a catalog view + row samplers for
/// the "record added from D \ x" side of UPA's neighbour sampling.
class TpchDataset {
 public:
  explicit TpchDataset(TpchConfig config);

  const TpchConfig& config() const { return config_; }

  const rel::Table& lineitem() const { return *lineitem_; }
  const rel::Table& orders() const { return *orders_; }
  const rel::Table& customer() const { return *customer_; }
  const rel::Table& part() const { return *part_; }
  const rel::Table& supplier() const { return *supplier_; }
  const rel::Table& partsupp() const { return *partsupp_; }
  const rel::Table& nation() const { return *nation_; }

  /// Name → table view over all seven tables.
  rel::Catalog catalog() const;

  /// Table access by name; aborts on unknown names.
  const rel::Table& table(const std::string& name) const;

  /// Draws a fresh, distribution-plausible row for `table` — a record from
  /// the record domain D that is not (necessarily) in the dataset.
  rel::Row SampleRow(const std::string& table, Rng& rng) const;

  /// Returns a copy of `table`'s rows with `indices` (sorted) removed —
  /// convenience for building churned datasets in benches/tests.
  std::vector<rel::Row> RowsWithout(const std::string& table,
                                    const std::vector<size_t>& indices) const;

 private:
  rel::Row MakeLineitemRow(Rng& rng, int64_t orderkey) const;
  rel::Row MakeOrdersRow(Rng& rng, int64_t orderkey) const;
  rel::Row MakeCustomerRow(Rng& rng, int64_t custkey) const;
  rel::Row MakePartRow(Rng& rng, int64_t partkey) const;
  rel::Row MakeSupplierRow(Rng& rng, int64_t suppkey) const;
  rel::Row MakePartsuppRow(Rng& rng, int64_t partkey, int64_t suppkey) const;

  TpchConfig config_;
  std::unique_ptr<rel::Table> lineitem_, orders_, customer_, part_, supplier_,
      partsupp_, nation_;
};

/// The brand/type/segment/priority vocabularies (exported for tests and
/// query parameter choices).
const std::vector<std::string>& Brands();
const std::vector<std::string>& PartTypes();
const std::vector<std::string>& MarketSegments();
const std::vector<std::string>& OrderPriorities();
const std::vector<std::string>& NationNames();

}  // namespace upa::tpch
