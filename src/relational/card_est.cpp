#include "relational/card_est.h"

#include <algorithm>
#include <vector>

#include "common/status.h"

namespace upa::rel {
namespace {

double Clamp01(double p) { return std::clamp(p, 0.0, 1.0); }

/// All scans under `plan` whose catalog table provides `column`.
void CollectOwners(const PlanPtr& plan, const std::string& column,
                   const Catalog& catalog,
                   std::vector<const Table*>& owners) {
  if (plan == nullptr) return;
  if (plan->kind == PlanKind::kScan) {
    auto it = catalog.find(plan->table);
    if (it != catalog.end() && it->second->schema().Has(column)) {
      owners.push_back(it->second);
    }
    return;
  }
  CollectOwners(plan->left, column, catalog, owners);
  CollectOwners(plan->right, column, catalog, owners);
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

CardinalityEstimator::CardinalityEstimator(const Catalog* catalog)
    : catalog_(catalog) {
  UPA_CHECK(catalog_ != nullptr);
}

const Table* CardinalityEstimator::ResolveColumn(
    const PlanPtr& input, const std::string& column) const {
  std::vector<const Table*> owners;
  CollectOwners(input, column, *catalog_, owners);
  return owners.size() == 1 ? owners[0] : nullptr;
}

double CardinalityEstimator::KeyDistinct(const PlanPtr& input,
                                         const std::string& column) const {
  const Table* owner = ResolveColumn(input, column);
  if (owner == nullptr) return 0.0;
  return static_cast<double>(owner->DistinctCount(column));
}

double CardinalityEstimator::EstimateSelectivity(const ExprPtr& predicate,
                                                 const PlanPtr& input) const {
  if (predicate == nullptr) return 1.0;
  switch (predicate->kind()) {
    case Expr::Kind::kBinary: {
      const BinOp op = predicate->op();
      if (op == BinOp::kAnd) {
        // Independence assumption: conjuncts multiply.
        return Clamp01(EstimateSelectivity(predicate->lhs(), input) *
                       EstimateSelectivity(predicate->rhs(), input));
      }
      if (op == BinOp::kOr) {
        const double p = EstimateSelectivity(predicate->lhs(), input);
        const double q = EstimateSelectivity(predicate->rhs(), input);
        return Clamp01(p + q - p * q);
      }
      if (!IsComparison(op)) return defaults_.unknown;

      // Normalize to column-vs-literal where possible; mirror the operator
      // when the literal sits on the left.
      const ExprPtr& lhs = predicate->lhs();
      const ExprPtr& rhs = predicate->rhs();
      const bool col_lit = lhs->kind() == Expr::Kind::kColumn &&
                           rhs->kind() == Expr::Kind::kLiteral;
      const bool lit_col = lhs->kind() == Expr::Kind::kLiteral &&
                           rhs->kind() == Expr::Kind::kColumn;
      if (lhs->kind() == Expr::Kind::kColumn &&
          rhs->kind() == Expr::Kind::kColumn) {
        // col = col (e.g. l_commitdate < l_receiptdate). Equality uses
        // 1/max(ndv); ordered comparisons use the range default.
        if (op == BinOp::kEq) {
          const double ndv = std::max(KeyDistinct(input, lhs->column_name()),
                                      KeyDistinct(input, rhs->column_name()));
          return ndv > 0 ? Clamp01(1.0 / ndv) : defaults_.equality;
        }
        if (op == BinOp::kNe) return Clamp01(1.0 - defaults_.equality);
        return defaults_.range;
      }
      if (!col_lit && !lit_col) {
        // Arithmetic operands: no histogram applies.
        return op == BinOp::kEq   ? defaults_.equality
               : op == BinOp::kNe ? Clamp01(1.0 - defaults_.equality)
                                  : defaults_.range;
      }
      const std::string& column =
          col_lit ? lhs->column_name() : rhs->column_name();
      const Value& literal = col_lit ? rhs->literal() : lhs->literal();
      BinOp effective = op;
      if (lit_col) {
        // lit < col  ≡  col > lit, etc.
        switch (op) {
          case BinOp::kLt: effective = BinOp::kGt; break;
          case BinOp::kLe: effective = BinOp::kGe; break;
          case BinOp::kGt: effective = BinOp::kLt; break;
          case BinOp::kGe: effective = BinOp::kLe; break;
          default: break;
        }
      }
      const Table* owner = ResolveColumn(input, column);
      if (owner == nullptr) {
        return effective == BinOp::kEq   ? defaults_.equality
               : effective == BinOp::kNe ? Clamp01(1.0 - defaults_.equality)
                                         : defaults_.range;
      }
      const ColumnStats stats = owner->Stats(column);
      if (effective == BinOp::kEq) {
        return stats.distinct > 0
                   ? Clamp01(1.0 / static_cast<double>(stats.distinct))
                   : defaults_.equality;
      }
      if (effective == BinOp::kNe) {
        return stats.distinct > 0
                   ? Clamp01(1.0 - 1.0 / static_cast<double>(stats.distinct))
                   : Clamp01(1.0 - defaults_.equality);
      }
      if (!stats.numeric || stats.histogram.empty() ||
          !IsNumeric(literal)) {
        return defaults_.range;
      }
      const double bound = AsNumeric(literal);
      const double below = stats.FractionBelow(bound);
      // Treat <= as < and >= as > plus one equality quantum; the histogram
      // cannot separate them more finely.
      const double eq = stats.distinct > 0
                            ? 1.0 / static_cast<double>(stats.distinct)
                            : 0.0;
      switch (effective) {
        case BinOp::kLt: return Clamp01(below);
        case BinOp::kLe: return Clamp01(below + eq);
        case BinOp::kGt: return Clamp01(1.0 - below - eq);
        default:         return Clamp01(1.0 - below);  // kGe
      }
    }
    case Expr::Kind::kNot:
      return Clamp01(1.0 - EstimateSelectivity(predicate->lhs(), input));
    case Expr::Kind::kInSet: {
      const ExprPtr& lhs = predicate->lhs();
      if (lhs->kind() == Expr::Kind::kColumn) {
        const Table* owner = ResolveColumn(input, lhs->column_name());
        if (owner != nullptr) {
          const size_t ndv = owner->DistinctCount(lhs->column_name());
          if (ndv > 0) {
            return Clamp01(static_cast<double>(predicate->set().size()) /
                           static_cast<double>(ndv));
          }
        }
      }
      return Clamp01(defaults_.equality *
                     static_cast<double>(predicate->set().size()));
    }
    case Expr::Kind::kLiteral:
      // A bare literal predicate is constant-true or constant-false.
      return IsNumeric(predicate->literal()) &&
                     AsNumeric(predicate->literal()) != 0.0
                 ? 1.0
                 : 0.0;
    case Expr::Kind::kColumn:
      return defaults_.unknown;
  }
  return defaults_.unknown;
}

double CardinalityEstimator::EstimateRows(const PlanPtr& plan) const {
  if (plan == nullptr) return 0.0;
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto it = catalog_->find(plan->table);
      return it != catalog_->end()
                 ? static_cast<double>(it->second->NumRows())
                 : 0.0;
    }
    case PlanKind::kFilter:
      return EstimateRows(plan->left) *
             EstimateSelectivity(plan->predicate, plan->left);
    case PlanKind::kJoin: {
      const double l = EstimateRows(plan->left);
      const double r = EstimateRows(plan->right);
      const double ndv = std::max(KeyDistinct(plan->left, plan->left_key),
                                  KeyDistinct(plan->right, plan->right_key));
      return ndv > 0 ? l * r / ndv : l * r * defaults_.equality;
    }
    case PlanKind::kAggregate:
      return 1.0;
  }
  return 0.0;
}

}  // namespace upa::rel
