// QuerySuite: the nine evaluated queries (Table II) bound to generated
// datasets, with uniform access to UPA instances, native (vanilla-engine)
// runs, FLEX analysis, ground truth, and dataset churn — everything the
// benchmark harness and the examples need.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flex/analyzer.h"
#include "groundtruth/ground_truth.h"
#include "mlkit/kmeans.h"
#include "mlkit/linreg.h"
#include "queries/plan_query.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "upa/runner.h"

namespace upa::queries {

struct SuiteConfig {
  tpch::TpchConfig tpch;
  ml::MlDataConfig ml;
  size_t threads = 0;
  size_t engine_partitions = 4;
};

struct QueryInfo {
  std::string name;
  std::string query_type;  // "Count" / "Arithmetic" / "Machine Learning"
  std::string private_table;  // "" for ML queries (the points are private)
  bool flex_supported = false;
  bool is_ml = false;
};

/// A churned variant of a query's private dataset: the original with
/// `removed` random records dropped (the per-run record churn of the
/// paper's Fig 2(b) methodology).
struct ChurnedData {
  std::shared_ptr<const std::vector<rel::Row>> plan_rows;
  std::shared_ptr<const std::vector<ml::MlPoint>> ml_points;
  size_t removed = 0;
};

class QuerySuite {
 public:
  explicit QuerySuite(SuiteConfig config);

  /// The nine names in the paper's Figure 2 order.
  static const std::vector<std::string>& AllQueryNames();

  const QueryInfo& Info(const std::string& name) const;

  /// UPA query instance (optionally over churned data).
  core::QueryInstance MakeInstance(const std::string& name,
                                   const ChurnedData* churn = nullptr) const;

  /// Vanilla engine execution — the "native Spark" baseline of Fig 2(b).
  double RunNative(const std::string& name,
                   const ChurnedData* churn = nullptr) const;

  /// Exact-incremental brute-force ground truth.
  Result<gt::GroundTruth> ComputeGroundTruth(
      const std::string& name, size_t n_additions, uint64_t seed,
      const ChurnedData* churn = nullptr) const;

  /// FLEX static analysis (unsupported for ML queries by construction).
  flex::FlexResult RunFlex(const std::string& name) const;

  /// Remove `remove_count` random records from the query's private dataset.
  ChurnedData MakeChurn(const std::string& name, size_t remove_count,
                        uint64_t churn_seed) const;

  size_t NumPrivateRecords(const std::string& name,
                           const ChurnedData* churn = nullptr) const;

  engine::ExecContext& ctx() const { return *ctx_; }
  const tpch::TpchDataset& tpch_data() const { return *tpch_; }
  const ml::MlDataset& ml_data() const { return *ml_; }
  const rel::PlanExecutor& executor() const { return *executor_; }
  const SuiteConfig& config() const { return config_; }

  /// The fixed ML query parameters (deterministic per dataset).
  const ml::LinRegSpec& linreg_spec() const { return linreg_spec_; }
  const ml::KMeansSpec& kmeans_spec() const { return kmeans_spec_; }

 private:
  const tpch::TpchQuery& PlanFor(const std::string& name) const;
  core::SimpleQuerySpec<ml::MlPoint> MlSpecFor(
      const std::string& name, const ChurnedData* churn) const;

  SuiteConfig config_;
  std::unique_ptr<engine::ExecContext> ctx_;
  std::unique_ptr<tpch::TpchDataset> tpch_;
  std::unique_ptr<ml::MlDataset> ml_;
  std::shared_ptr<const rel::PlanExecutor> executor_;
  rel::Catalog catalog_;
  std::map<std::string, tpch::TpchQuery> tpch_queries_;
  std::map<std::string, QueryInfo> info_;
  ml::LinRegSpec linreg_spec_;
  ml::KMeansSpec kmeans_spec_;
};

}  // namespace upa::queries
