#include "relational/optimizer.h"

#include <gtest/gtest.h>

#include <memory>

#include "relational/executor.h"
#include "relational/sql_parser.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace upa::rel {
namespace {

TEST(SplitConjunctsTest, SplitsNestedAnds) {
  auto e = And(And(Eq(Col("a"), Lit(int64_t{1})), Lt(Col("b"), Lit(2.0))),
               Gt(Col("c"), Lit(3.0)));
  auto parts = SplitConjuncts(e);
  EXPECT_EQ(parts.size(), 3u);
}

TEST(SplitConjunctsTest, OrIsNotSplit) {
  auto e = Or(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(int64_t{2})));
  EXPECT_EQ(SplitConjuncts(e).size(), 1u);
}

TEST(ReferencedColumnsTest, CollectsAllColumns) {
  auto e = And(Eq(Col("x"), Lit(int64_t{1})), Lt(Add(Col("y"), Col("z")),
                                                 Lit(5.0)));
  auto cols = ReferencedColumns(e);
  EXPECT_EQ(cols.size(), 3u);
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : data_([] {
          tpch::TpchConfig cfg;
          cfg.num_orders = 300;
          return cfg;
        }()),
        ctx_(engine::ExecConfig{.threads = 2, .default_partitions = 3}),
        catalog_(data_.catalog()),
        executor_(&ctx_, &catalog_) {}

  tpch::TpchDataset data_;
  engine::ExecContext ctx_;
  Catalog catalog_;
  PlanExecutor executor_;
};

TEST_F(OptimizerTest, SingleTablePredicateReachesScan) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "WHERE o_orderdate < 500");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  std::string s = PlanToString(optimized);
  // The orders predicate must sit below the join, directly over its scan.
  EXPECT_NE(s.find("Join(Filter(Scan(orders)"), std::string::npos) << s;
}

TEST_F(OptimizerTest, CrossTablePredicateStaysAboveJoin) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "WHERE o_orderdate < l_shipdate");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  std::string s = PlanToString(optimized);
  EXPECT_NE(s.find("Filter(Join("), std::string::npos) << s;
}

TEST_F(OptimizerTest, MixedPredicatesSplitCorrectly) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "WHERE o_orderdate < 500 AND l_quantity > 10 AND "
      "o_orderdate < l_shipdate");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  std::string s = PlanToString(optimized);
  EXPECT_NE(s.find("Filter(Scan(orders)"), std::string::npos) << s;
  EXPECT_NE(s.find("Filter(Scan(lineitem)"), std::string::npos) << s;
  EXPECT_NE(s.find("Filter(Join("), std::string::npos) << s;
}

TEST_F(OptimizerTest, PlanWithoutFiltersUnchanged) {
  auto plan = ParseSql("SELECT COUNT(*) FROM lineitem");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  EXPECT_EQ(PlanToString(optimized), PlanToString(plan.value()));
}

TEST_F(OptimizerTest, OptimizedPlanGivesIdenticalResults) {
  for (const char* sql : {
           "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = "
           "l_orderkey WHERE o_orderdate >= 400 AND o_orderdate < 900 AND "
           "l_commitdate < l_receiptdate",
           "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
           "l_shipdate >= 365 AND l_discount >= 0.03",
           "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = "
           "o_custkey WHERE o_orderpriority <> '1-URGENT' AND "
           "c_nationkey < 10",
       }) {
    auto plan = ParseSql(sql);
    ASSERT_TRUE(plan.ok()) << sql;
    PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
    auto base = executor_.Execute(plan.value());
    auto opt = executor_.Execute(optimized);
    ASSERT_TRUE(base.ok() && opt.ok()) << sql;
    EXPECT_NEAR(base.value().output, opt.value().output, 1e-9) << sql;
  }
}

TEST_F(OptimizerTest, OptimizedPlanPreservesContributions) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = o_custkey "
      "WHERE o_orderpriority <> '1-URGENT' AND c_nationkey < 15");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);

  ExecOptions opts;
  opts.private_table = "orders";
  opts.track_contributions = true;
  auto base = executor_.Execute(plan.value(), opts);
  auto opt = executor_.Execute(optimized, opts);
  ASSERT_TRUE(base.ok() && opt.ok());
  EXPECT_EQ(base.value().contributions.size(),
            opt.value().contributions.size());
  for (const auto& [idx, infl] : base.value().contributions) {
    auto it = opt.value().contributions.find(idx);
    ASSERT_NE(it, opt.value().contributions.end()) << idx;
    EXPECT_NEAR(it->second, infl, 1e-9);
  }
}

TEST_F(OptimizerTest, HandBuiltTpchPlansSurvivePushdown) {
  // The hand-built queries already filter before joining; pushdown must
  // not change their results.
  for (const auto& q : tpch::AllTpchQueries()) {
    PlanPtr optimized = PushDownFilters(q.plan, catalog_);
    auto base = executor_.Execute(q.plan);
    auto opt = executor_.Execute(optimized);
    ASSERT_TRUE(base.ok() && opt.ok()) << q.name;
    EXPECT_NEAR(base.value().output, opt.value().output, 1e-9) << q.name;
  }
}

TEST_F(OptimizerTest, TpchSqlFormsMatchHandBuiltPlans) {
  // The paper's queries written as SQL + pushdown == the hand-built
  // filter-before-join plans, output-wise.
  struct SqlCase {
    const char* name;
    const char* sql;
  };
  for (const SqlCase& c : std::initializer_list<SqlCase>{
           {"TPCH1", "SELECT COUNT(*) FROM lineitem"},
           {"TPCH4",
            "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = "
            "l_orderkey WHERE o_orderdate >= 400 AND o_orderdate < 490 AND "
            "l_commitdate < l_receiptdate"},
           {"TPCH6",
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
            "l_shipdate >= 365 AND l_shipdate < 730 AND l_discount >= 0.05 "
            "AND l_discount <= 0.07 AND l_quantity < 24.0"},
           {"TPCH13",
            "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = "
            "o_custkey WHERE o_orderpriority <> '1-URGENT'"},
       }) {
    auto sql_plan = ParseSql(c.sql);
    ASSERT_TRUE(sql_plan.ok()) << c.name;
    PlanPtr optimized = PushDownFilters(sql_plan.value(), catalog_);
    auto sql_result = executor_.Execute(optimized);
    ASSERT_TRUE(sql_result.ok()) << c.name;

    for (const auto& q : tpch::AllTpchQueries()) {
      if (q.name != c.name) continue;
      auto hand = executor_.Execute(q.plan);
      ASSERT_TRUE(hand.ok()) << c.name;
      EXPECT_NEAR(sql_result.value().output, hand.value().output, 1e-6)
          << c.name;
    }
  }
}

}  // namespace
}  // namespace upa::rel
