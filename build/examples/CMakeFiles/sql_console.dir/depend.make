# Empty dependencies file for sql_console.
# This may be replaced when dependencies are built.
