# Empty dependencies file for dp_api_edge_test.
# This may be replaced when dependencies are built.
