file(REMOVE_RECURSE
  "CMakeFiles/upa_plan_properties_test.dir/upa_plan_properties_test.cpp.o"
  "CMakeFiles/upa_plan_properties_test.dir/upa_plan_properties_test.cpp.o.d"
  "upa_plan_properties_test"
  "upa_plan_properties_test.pdb"
  "upa_plan_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_plan_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
