#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "common/timer.h"

namespace upa {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard lock(mu_);
    UPA_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

size_t ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  return ParallelForChunks(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

size_t ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return 0;
  // Cooperative cancellation: chunks are the polling boundary. Each chunk
  // re-installs the caller's token on the worker that runs it (tokens ride
  // a thread-local scope, not the call signature) and is skipped once the
  // token trips — the caller is abandoning the result anyway, so skipped
  // chunks only shed work; the caller converts the trip into a Status.
  CancelToken* token = CancelScope::Current();
  size_t chunks = std::min(n, thread_count());
  if (chunks <= 1) {
    if (token == nullptr || token->Check().ok()) fn(0, n);
    return 1;
  }
  size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    futures.push_back(Submit([&fn, begin, end, token] {
      CancelScope scope(token);
      if (token == nullptr || token->Check().ok()) fn(begin, end);
    }));
  }
  // Wait for every chunk before propagating any error: chunks reference
  // caller stack state, so unwinding while siblings still run would be a
  // use-after-scope.
  //
  // While waiting, help-run queued tasks. A plain future::get() here would
  // deadlock when the caller is itself a pool worker: the sibling chunks sit
  // in the queue waiting for this very thread. Draining the queue instead
  // guarantees progress on any pool size, including a 1-thread pool whose
  // single worker calls ParallelFor recursively.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!TryRunOneTask()) {
        // Queue empty but our chunk still running on another worker; a short
        // timed wait (not a bare get()) keeps us responsive to tasks that
        // the running chunk may itself enqueue.
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return futures.size();
}

double ThreadPool::MorselTimings::SumSeconds() const {
  return std::accumulate(seconds.begin(), seconds.end(), 0.0);
}

double ThreadPool::MorselTimings::MaxSeconds() const {
  double mx = 0.0;
  for (double s : seconds) mx = std::max(mx, s);
  return mx;
}

double ThreadPool::MorselTimings::Imbalance() const {
  if (seconds.size() <= 1) return 1.0;
  const double sum = SumSeconds();
  if (sum <= 0.0) return 1.0;
  return MaxSeconds() * static_cast<double>(seconds.size()) / sum;
}

size_t ThreadPool::ParallelForMorsels(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn,
    MorselTimings* timings) {
  if (n == 0) return 0;
  if (grain == 0) {
    // Several morsels per worker so pulls can rebalance, without making the
    // cursor a contention point for tiny per-item work.
    grain = std::max<size_t>(1, n / (thread_count() * 8));
  }
  const size_t morsels = (n + grain - 1) / grain;
  CancelToken* token = CancelScope::Current();

  // Shared pull state. Workers fetch-add the cursor, so morsel boundaries
  // are a pure function of (n, grain); only *which thread* runs a morsel
  // varies between executions.
  std::atomic<size_t> cursor{0};
  std::mutex timings_mu;
  auto drain = [&] {
    std::vector<double> local;
    for (;;) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      // Morsel boundaries are the cancellation polling points: a tripped
      // token sheds every not-yet-pulled morsel.
      if (token != nullptr && !token->Check().ok()) break;
      if (timings != nullptr) {
        Stopwatch watch;
        fn(begin, std::min(n, begin + grain));
        local.push_back(watch.ElapsedSeconds());
      } else {
        fn(begin, std::min(n, begin + grain));
      }
    }
    if (timings != nullptr && !local.empty()) {
      std::lock_guard lock(timings_mu);
      timings->seconds.insert(timings->seconds.end(), local.begin(),
                              local.end());
    }
  };

  const size_t helpers = std::min(morsels, thread_count()) - 1;
  if (helpers == 0) {
    drain();
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (size_t h = 0; h < helpers; ++h) {
      futures.push_back(Submit([&drain, token] {
        CancelScope scope(token);
        drain();
      }));
    }
    // The caller participates, then waits with the same help-run loop as
    // ParallelForChunks (a bare get() would deadlock when the caller is a
    // pool worker and its helpers sit behind it in the queue). Errors are
    // propagated only after every helper finished: morsels reference the
    // caller's stack state.
    std::exception_ptr first_error;
    try {
      drain();
    } catch (...) {
      first_error = std::current_exception();
    }
    for (auto& f : futures) {
      while (f.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!TryRunOneTask()) {
          f.wait_for(std::chrono::milliseconds(1));
        }
      }
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  return morsels;
}

bool ThreadPool::TryRunOneTask() {
  std::packaged_task<void()> task;
  {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  UPA_FAILPOINT_HIT("threadpool/task");
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    UPA_FAILPOINT_HIT("threadpool/task");
    task();
  }
}

}  // namespace upa
