# Empty dependencies file for upa_dp.
# This may be replaced when dependencies are built.
