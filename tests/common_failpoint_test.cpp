// Failpoint framework: spec parsing, deterministic triggers, env
// activation, stats, and the macro contract.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/timer.h"

namespace upa {
namespace {

/// Every test starts and ends with a clean registry — failpoints are
/// process-global, so leaks would bleed into unrelated tests.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DeactivateAll(); }
  void TearDown() override { Failpoints::Instance().DeactivateAll(); }
};

Status GuardedSite(const char* site) {
  UPA_FAILPOINT(site);
  return Status::Ok();
}

TEST_F(FailpointTest, InactiveSiteIsOkAndAnyActiveFalse) {
  EXPECT_FALSE(Failpoints::Instance().AnyActive());
  EXPECT_TRUE(GuardedSite("test/nowhere").ok());
  Failpoints::SiteStats stats = Failpoints::Instance().StatsFor("test/nowhere");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.fires, 0u);
}

TEST_F(FailpointTest, ErrorActionInjectsStatus) {
  ASSERT_TRUE(Failpoints::Instance().Activate("test/site", "error(internal)")
                  .ok());
  EXPECT_TRUE(Failpoints::Instance().AnyActive());
  Status st = GuardedSite("test/site");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("test/site"), std::string::npos);
}

TEST_F(FailpointTest, ErrorActionCarriesCodeAndMessage) {
  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("test/site", "error(resource_exhausted,no slots)")
                  .ok());
  Status st = GuardedSite("test/site");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(st.message(), "no slots");
}

TEST_F(FailpointTest, EveryNFiresOnExactMultiples) {
  ASSERT_TRUE(
      Failpoints::Instance().Activate("test/site", "error(internal):every(3)")
          .ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!GuardedSite("test/site").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  Failpoints::SiteStats stats = Failpoints::Instance().StatsFor("test/site");
  EXPECT_EQ(stats.hits, 9u);
  EXPECT_EQ(stats.fires, 3u);
}

TEST_F(FailpointTest, ProbabilityScheduleIsDeterministicInSeed) {
  auto schedule = [&](uint64_t seed) {
    Failpoints::Spec spec;
    spec.action = Failpoints::Action::kError;
    spec.trigger = Failpoints::Trigger::kProbability;
    spec.probability = 0.5;
    spec.seed = seed;
    Failpoints::Instance().Activate("test/site", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!GuardedSite("test/site").ok());
    }
    return fired;
  };
  std::vector<bool> a = schedule(42);
  std::vector<bool> b = schedule(42);
  std::vector<bool> c = schedule(43);
  EXPECT_EQ(a, b);  // same seed → bit-identical schedule
  EXPECT_NE(a, c);  // different seed → different schedule
  // p=0.5 over 64 hits: both outcomes must occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FailpointTest, ProbabilityExtremesNeverAndAlways) {
  Failpoints::Spec spec;
  spec.action = Failpoints::Action::kError;
  spec.trigger = Failpoints::Trigger::kProbability;
  spec.probability = 0.0;
  Failpoints::Instance().Activate("test/site", spec);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(GuardedSite("test/site").ok());
  spec.probability = 1.0;
  Failpoints::Instance().Activate("test/site", spec);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(GuardedSite("test/site").ok());
}

TEST_F(FailpointTest, DelayActionSleepsAndReturnsOk) {
  ASSERT_TRUE(Failpoints::Instance().Activate("test/site", "delay(20)").ok());
  Stopwatch timer;
  EXPECT_TRUE(GuardedSite("test/site").ok());
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
}

TEST_F(FailpointTest, VoidContextMacroCountsFires) {
  ASSERT_TRUE(Failpoints::Instance().Activate("test/site", "error").ok());
  UPA_FAILPOINT_HIT("test/site");
  UPA_FAILPOINT_HIT("test/site");
  Failpoints::SiteStats stats = Failpoints::Instance().StatsFor("test/site");
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FailpointTest, DeactivateRestoresSite) {
  ASSERT_TRUE(Failpoints::Instance().Activate("test/site", "error").ok());
  EXPECT_FALSE(GuardedSite("test/site").ok());
  Failpoints::Instance().Deactivate("test/site");
  EXPECT_FALSE(Failpoints::Instance().AnyActive());
  EXPECT_TRUE(GuardedSite("test/site").ok());
}

TEST_F(FailpointTest, ActivationReplacesSpecAndResetsCounters) {
  ASSERT_TRUE(Failpoints::Instance().Activate("test/site", "error").ok());
  (void)GuardedSite("test/site");
  ASSERT_TRUE(
      Failpoints::Instance().Activate("test/site", "error(internal):every(2)")
          .ok());
  EXPECT_EQ(Failpoints::Instance().StatsFor("test/site").hits, 0u);
  EXPECT_TRUE(GuardedSite("test/site").ok());    // hit 1 of every(2)
  EXPECT_FALSE(GuardedSite("test/site").ok());   // hit 2 fires
}

TEST_F(FailpointTest, LoadFromEnvActivatesMultipleSites) {
  ASSERT_TRUE(Failpoints::Instance()
                  .LoadFromEnv("a/x=error(not_found):every(2);b/y=delay(0)")
                  .ok());
  EXPECT_TRUE(GuardedSite("a/x").ok());
  EXPECT_EQ(GuardedSite("a/x").code(), StatusCode::kNotFound);
  EXPECT_TRUE(GuardedSite("b/y").ok());
  EXPECT_EQ(Failpoints::Instance().StatsFor("b/y").fires, 1u);
}

TEST_F(FailpointTest, LoadFromEnvEmptyIsOk) {
  EXPECT_TRUE(Failpoints::Instance().LoadFromEnv("").ok());
  EXPECT_TRUE(Failpoints::Instance().LoadFromEnv(nullptr).ok());
  EXPECT_FALSE(Failpoints::Instance().AnyActive());
}

TEST_F(FailpointTest, ParseRejectsMalformedSpecs) {
  Failpoints::Spec spec;
  EXPECT_FALSE(Failpoints::ParseSpec("explode", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("error(bogus_code)", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("delay", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("delay(-3)", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("abort(now)", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("error:every(0)", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("error:prob(1.5)", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("error:sometimes", &spec).ok());
  EXPECT_FALSE(Failpoints::ParseSpec("error(internal", &spec).ok());
  EXPECT_FALSE(
      Failpoints::Instance().LoadFromEnv("missing_equals_sign").ok());
}

TEST_F(FailpointTest, ParseAcceptsFullGrammar) {
  Failpoints::Spec spec;
  ASSERT_TRUE(Failpoints::ParseSpec("error(cancelled,gone):prob(0.25,7)",
                                    &spec)
                  .ok());
  EXPECT_EQ(spec.action, Failpoints::Action::kError);
  EXPECT_EQ(spec.error_code, StatusCode::kCancelled);
  EXPECT_EQ(spec.error_message, "gone");
  EXPECT_EQ(spec.trigger, Failpoints::Trigger::kProbability);
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
  EXPECT_EQ(spec.seed, 7u);

  ASSERT_TRUE(Failpoints::ParseSpec("abort:every(5)", &spec).ok());
  EXPECT_EQ(spec.action, Failpoints::Action::kAbort);
  EXPECT_EQ(spec.every_n, 5u);
}

}  // namespace
}  // namespace upa
