#include "dp/gaussian.h"

#include <cmath>

#include "common/status.h"

namespace upa::dp {

double GaussianSigma(double l2_sensitivity, double epsilon, double delta) {
  UPA_CHECK_MSG(epsilon > 0.0 && epsilon < 1.0,
                "classic Gaussian mechanism requires epsilon in (0, 1)");
  UPA_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  UPA_CHECK_MSG(l2_sensitivity >= 0.0, "sensitivity must be non-negative");
  return l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

double GaussianMechanism(double value, double l2_sensitivity, double epsilon,
                         double delta, Rng& rng) {
  double sigma = GaussianSigma(l2_sensitivity, epsilon, delta);
  return sigma == 0.0 ? value : value + rng.Normal(0.0, sigma);
}

std::vector<double> GaussianMechanism(const std::vector<double>& values,
                                      double l2_sensitivity, double epsilon,
                                      double delta, Rng& rng) {
  double sigma = GaussianSigma(l2_sensitivity, epsilon, delta);
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(sigma == 0.0 ? v : v + rng.Normal(0.0, sigma));
  }
  return out;
}

PrivacyParams BasicComposition(PrivacyParams per_release, size_t k) {
  return {per_release.epsilon * static_cast<double>(k),
          per_release.delta * static_cast<double>(k)};
}

PrivacyParams AdvancedComposition(PrivacyParams per_release, size_t k,
                                  double delta_prime) {
  UPA_CHECK_MSG(delta_prime > 0.0 && delta_prime < 1.0,
                "delta_prime must be in (0, 1)");
  double eps = per_release.epsilon;
  double kd = static_cast<double>(k);
  double eps_prime = eps * std::sqrt(2.0 * kd * std::log(1.0 / delta_prime)) +
                     kd * eps * (std::exp(eps) - 1.0);
  return {eps_prime, kd * per_release.delta + delta_prime};
}

}  // namespace upa::dp
