#include "dp/mechanism.h"

#include <algorithm>

#include "common/status.h"

namespace upa::dp {

double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng& rng) {
  UPA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  UPA_CHECK_MSG(sensitivity >= 0.0, "sensitivity must be non-negative");
  return value + rng.Laplace(sensitivity / epsilon);
}

std::vector<double> LaplaceMechanism(const std::vector<double>& values,
                                     double sensitivity, double epsilon,
                                     Rng& rng) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(LaplaceMechanism(v, sensitivity, epsilon, rng));
  }
  return out;
}

double ClampedLaplaceRelease(double value, const Interval& range,
                             double epsilon, Rng& rng, double min_width) {
  UPA_CHECK_MSG(min_width >= 0.0, "min_width must be non-negative");
  double clamped = range.Clamp(value);
  double width = std::max(range.width(), min_width);
  return LaplaceMechanism(clamped, width, epsilon, rng);
}

}  // namespace upa::dp
