# CMake generated Testfile for 
# Source directory: /root/repo/src/dp
# Build directory: /root/repo/build/src/dp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
