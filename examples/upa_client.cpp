// Command-line client for a running upa_server.
//
// Usage:
//   upa_client <port> "SELECT COUNT(*) FROM lineitem" [private_table]
//   upa_client <port> --stats
//
// The private table defaults to "lineitem"; it is the privacy unit the
// server charges budget against, so the query must scan it.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/client.h"

using namespace upa;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <port> <sql|--stats> [private_table]\n",
                 argv[0]);
    return 2;
  }
  uint16_t port = static_cast<uint16_t>(std::atoi(argv[1]));
  auto connected = net::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Client> client = std::move(connected).value();

  if (std::string(argv[2]) == "--stats") {
    auto stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", stats.value().c_str());
    return 0;
  }

  net::WireQuery query;
  query.tenant = "cli";
  query.dataset_id = argc >= 4 ? argv[3] : "lineitem";
  query.epsilon = 0.5;
  query.seed = 2026;
  query.sql = argv[2];
  auto result = client->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const net::WireResult& wire = result.value();
  if (!wire.ok()) {
    std::fprintf(stderr, "server error: %s\n",
                 wire.status().ToString().c_str());
    return 1;
  }
  std::printf("released = %.4f\n", wire.response.released);
  std::printf("epsilon  = %.2f  (dataset '%s', epoch %llu)\n",
              wire.response.epsilon, query.dataset_id.c_str(),
              static_cast<unsigned long long>(wire.response.dataset_epoch));
  std::printf("inferred sensitivity %.4g%s%s\n",
              wire.response.local_sensitivity,
              wire.response.sensitivity_cache_hit ? ", cached" : "",
              wire.response.attack_suspected
                  ? ", repeat-query defense engaged"
                  : "");
  return 0;
}
