#include "engine/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"

namespace upa::engine {
namespace {

using KV = std::pair<int, int>;

ExecContext& Ctx() {
  static ExecContext ctx(ExecConfig{.threads = 4, .default_partitions = 4});
  return ctx;
}

TEST(ShuffleByKeyTest, EqualKeysColocate) {
  std::vector<KV> data;
  for (int i = 0; i < 100; ++i) data.push_back({i % 10, i});
  auto ds = Dataset<KV>::FromVector(&Ctx(), data, 5);
  auto shuffled = ShuffleByKey(ds, 3);
  EXPECT_EQ(shuffled.NumPartitions(), 3u);
  EXPECT_EQ(shuffled.Count(), 100u);
  // Every key must live in exactly one partition.
  std::map<int, std::set<size_t>> key_parts;
  for (size_t p = 0; p < shuffled.NumPartitions(); ++p) {
    for (const auto& [k, v] : shuffled.partition(p)) key_parts[k].insert(p);
  }
  for (const auto& [k, parts] : key_parts) {
    EXPECT_EQ(parts.size(), 1u) << "key " << k;
  }
}

TEST(ShuffleByKeyTest, CountsShuffleMetrics) {
  ExecContext local(ExecConfig{.threads = 2, .default_partitions = 2});
  std::vector<KV> data{{1, 1}, {2, 2}, {3, 3}};
  auto ds = Dataset<KV>::FromVector(&local, data, 2);
  auto before = local.metrics().Snapshot();
  ShuffleByKey(ds, 2);
  auto delta = local.metrics().Snapshot() - before;
  EXPECT_EQ(delta.shuffle_rounds, 1u);
  EXPECT_EQ(delta.shuffle_records, 3u);
}

TEST(ReduceByKeyTest, SumsPerKey) {
  std::vector<KV> data;
  for (int i = 0; i < 60; ++i) data.push_back({i % 3, 1});
  auto ds = Dataset<KV>::FromVector(&Ctx(), data, 4);
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; }, 4);
  auto out = reduced.Collect();
  std::map<int, int> by_key(out.begin(), out.end());
  EXPECT_EQ(by_key.size(), 3u);
  EXPECT_EQ(by_key[0], 20);
  EXPECT_EQ(by_key[1], 20);
  EXPECT_EQ(by_key[2], 20);
}

TEST(ReduceByKeyTest, OnePairPerDistinctKey) {
  std::vector<KV> data{{5, 1}, {5, 2}, {6, 3}};
  auto ds = Dataset<KV>::FromVector(&Ctx(), data, 2);
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
  EXPECT_EQ(reduced.Count(), 2u);
}

TEST(ReduceByKeyTest, EmptyInput) {
  auto ds = Dataset<KV>::FromVector(&Ctx(), {}, 2);
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; });
  EXPECT_EQ(reduced.Count(), 0u);
}

TEST(ReduceByKeyTest, MapSideCombinerCutsShuffleVolume) {
  ExecContext local(ExecConfig{.threads = 2, .default_partitions = 2});
  // 1000 records but only 4 distinct keys: the combiner should shrink the
  // shuffle to at most keys x partitions records.
  std::vector<KV> data;
  for (int i = 0; i < 1000; ++i) data.push_back({i % 4, 1});
  auto ds = Dataset<KV>::FromVector(&local, data, 2);
  auto before = local.metrics().Snapshot();
  ReduceByKey(ds, [](int a, int b) { return a + b; }, 2);
  auto delta = local.metrics().Snapshot() - before;
  EXPECT_LE(delta.shuffle_records, 8u);  // 4 keys x 2 map partitions
  EXPECT_EQ(delta.shuffle_rounds, 1u);
}

TEST(HashJoinTest, InnerJoinProducesAllPairs) {
  std::vector<std::pair<int, std::string>> left{{1, "a"}, {2, "b"}, {2, "c"}};
  std::vector<std::pair<int, double>> right{{2, 0.5}, {2, 1.5}, {3, 9.0}};
  auto l = Dataset<std::pair<int, std::string>>::FromVector(&Ctx(), left, 2);
  auto r = Dataset<std::pair<int, double>>::FromVector(&Ctx(), right, 2);
  auto joined = HashJoin(l, r, 3);
  auto out = joined.Collect();
  // key 2: 2 left x 2 right = 4 pairs; keys 1 and 3 don't match.
  EXPECT_EQ(out.size(), 4u);
  for (const auto& [k, vw] : out) {
    EXPECT_EQ(k, 2);
    EXPECT_TRUE(vw.first == "b" || vw.first == "c");
    EXPECT_TRUE(vw.second == 0.5 || vw.second == 1.5);
  }
}

TEST(HashJoinTest, NoMatchesYieldsEmpty) {
  std::vector<KV> left{{1, 1}};
  std::vector<KV> right{{2, 2}};
  auto l = Dataset<KV>::FromVector(&Ctx(), left, 1);
  auto r = Dataset<KV>::FromVector(&Ctx(), right, 1);
  EXPECT_EQ(HashJoin(l, r).Count(), 0u);
}

TEST(HashJoinTest, TriggersTwoShuffleRounds) {
  // One per side — UPA's joinDP doubles this (asserted in upa tests).
  ExecContext local(ExecConfig{.threads = 2, .default_partitions = 2});
  std::vector<KV> data{{1, 1}, {2, 2}};
  auto l = Dataset<KV>::FromVector(&local, data, 2);
  auto r = Dataset<KV>::FromVector(&local, data, 2);
  auto before = local.metrics().Snapshot();
  HashJoin(l, r, 2);
  auto delta = local.metrics().Snapshot() - before;
  EXPECT_EQ(delta.shuffle_rounds, 2u);
}

TEST(GroupByKeyTest, GathersAllValues) {
  std::vector<KV> data{{1, 10}, {2, 20}, {1, 11}, {1, 12}};
  auto ds = Dataset<KV>::FromVector(&Ctx(), data, 3);
  auto grouped = GroupByKey(ds, 2);
  std::map<int, std::vector<int>> by_key;
  for (auto& [k, vs] : grouped.Collect()) {
    std::sort(vs.begin(), vs.end());
    by_key[k] = vs;
  }
  EXPECT_EQ(by_key[1], (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(by_key[2], (std::vector<int>{20}));
}

// Join-cardinality property sweep: |join| == sum over keys of
// left_count(k) * right_count(k), independent of partitioning.
class JoinCardinalitySweep : public ::testing::TestWithParam<int> {};

TEST_P(JoinCardinalitySweep, MatchesAnalyticCardinality) {
  Rng rng(200 + GetParam());
  std::vector<KV> left, right;
  std::map<int, int> lc, rc;
  for (int i = 0; i < 300; ++i) {
    int k = static_cast<int>(rng.UniformU64(20));
    left.push_back({k, i});
    lc[k]++;
  }
  for (int i = 0; i < 200; ++i) {
    int k = static_cast<int>(rng.UniformU64(20));
    right.push_back({k, i});
    rc[k]++;
  }
  size_t expected = 0;
  for (auto& [k, c] : lc) expected += static_cast<size_t>(c) * rc[k];

  auto l = Dataset<KV>::FromVector(&Ctx(), left, GetParam());
  auto r = Dataset<KV>::FromVector(&Ctx(), right, 3);
  EXPECT_EQ(HashJoin(l, r, GetParam()).Count(), expected);
}

INSTANTIATE_TEST_SUITE_P(Partitions, JoinCardinalitySweep,
                         ::testing::Values(1, 2, 4, 7, 16));

}  // namespace
}  // namespace upa::engine
