// Cluster layer tests: the consistent-hash ring, and the router over
// in-process shard servers (real net::Server instances — the router cannot
// tell; cross-PROCESS shards are covered by cluster_chaos_test.cpp).
//
// The centrepiece is the differential test: the same sequential workload
// driven (a) straight at one UpaService and (b) through the router over a
// 4-shard cluster must produce BIT-identical released values and identical
// budget ledgers per dataset — sharding adds placement and transport,
// never semantics. The rest covers the protection edges: per-shard
// backpressure (kResourceExhausted), dead-shard rejection (kUnavailable),
// in-flight failover when a shard dies mid-query, and the health-probe
// gate on reconnect.
#include "cluster/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.h"
#include "cluster/shard_process.h"
#include "net/client.h"
#include "net/server.h"
#include "upa/simple_query.h"

namespace upa::cluster {
namespace {

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 4, .default_partitions = 4});
  return ctx;
}

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

core::QueryInstance CountQuery(size_t n, const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

core::QueryInstance GatedQuery(size_t n,
                               std::shared_ptr<std::atomic<bool>> gate,
                               const std::string& name) {
  core::QueryInstance q = CountQuery(n, name);
  auto inner = std::move(q.execute_phases);
  q.execute_phases = [inner, gate](std::span<const size_t> sample_indices,
                                   size_t num_partitions, size_t num_domain,
                                   uint64_t seed) {
    while (!gate->load(std::memory_order_acquire)) std::this_thread::yield();
    return inner(sample_indices, num_partitions, num_domain, seed);
  };
  return q;
}

net::QueryCompiler ToyCompiler(std::shared_ptr<std::atomic<bool>> gate) {
  return [gate](const net::WireQuery& wire) -> Result<core::QueryInstance> {
    if (wire.sql.rfind("count:", 0) == 0) {
      return CountQuery(std::stoul(wire.sql.substr(6)), wire.sql);
    }
    if (wire.sql.rfind("gate:", 0) == 0) {
      return GatedQuery(std::stoul(wire.sql.substr(5)), gate, wire.sql);
    }
    return Status::InvalidArgument("unknown toy SQL: " + wire.sql);
  };
}

service::ServiceConfig FastConfig() {
  service::ServiceConfig config;
  config.upa.sample_n = 100;
  return config;
}

bool WaitFor(const std::function<bool()>& pred) {
  for (int i = 0; i < 10000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// One in-process shard: service + wire server + gate.
struct Shard {
  explicit Shard(service::ServiceConfig cfg = FastConfig())
      : gate(std::make_shared<std::atomic<bool>>(false)),
        service(&Ctx(), cfg),
        server(&service, ToyCompiler(gate)) {
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ShardAddress address() const { return {"127.0.0.1", server.port()}; }

  std::shared_ptr<std::atomic<bool>> gate;
  service::UpaService service;
  net::Server server;
};

net::WireQuery MakeQuery(const std::string& dataset, const std::string& sql,
                         uint64_t seed) {
  net::WireQuery query;
  query.tenant = "tenant-" + dataset;
  query.dataset_id = dataset;
  query.epsilon = 0.1;
  query.seed = seed;
  query.sql = sql;
  return query;
}

// ---------------------------------------------------------------------------
// Ring.

TEST(ClusterRingTest, DeterministicAcrossInstances) {
  ConsistentHashRing a(4, 64), b(4, 64);
  for (int i = 0; i < 2000; ++i) {
    const std::string id = "dataset-" + std::to_string(i);
    EXPECT_EQ(a.ShardFor(id), b.ShardFor(id));
  }
}

TEST(ClusterRingTest, CoversAllShardsRoughlyEvenly) {
  const size_t shards = 4;
  ConsistentHashRing ring(shards, 64);
  std::vector<size_t> counts(shards, 0);
  const size_t ids = 10000;
  for (size_t i = 0; i < ids; ++i) {
    ++counts[ring.ShardFor("ds-" + std::to_string(i))];
  }
  for (size_t s = 0; s < shards; ++s) {
    // 64 vnodes keeps the spread well inside [10%, 45%] of uniform share.
    EXPECT_GT(counts[s], ids / 10) << "shard " << s;
    EXPECT_LT(counts[s], ids * 45 / 100) << "shard " << s;
  }
}

TEST(ClusterRingTest, GrowingTheRingMovesOnlyAFraction) {
  ConsistentHashRing four(4, 64), five(5, 64);
  size_t moved = 0;
  const size_t ids = 10000;
  for (size_t i = 0; i < ids; ++i) {
    const std::string id = "ds-" + std::to_string(i);
    if (four.ShardFor(id) != five.ShardFor(id)) ++moved;
  }
  // Consistent hashing: adding shard 5 of 5 should move ~1/5 of the keys,
  // not rehash the world. Allow generous slack over the ideal 20%.
  EXPECT_LT(moved, ids * 45 / 100);
  EXPECT_GT(moved, ids / 20);  // and it must move *something*
}

TEST(ClusterRingDeathTest, RejectsEmptyRing) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(ConsistentHashRing(0, 64), "at least one shard");
}

// ---------------------------------------------------------------------------
// Router.

TEST(ClusterRouterTest, RoutesQueriesAndServesStats) {
  Shard shard;
  Router router({shard.address()});
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  auto connected = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<net::Client> client = std::move(connected).value();

  auto result = client->Query(MakeQuery("ds", "count:500", 7));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().ok()) << result.value().status().ToString();
  EXPECT_NEAR(result.value().response.released, 500.0, 100.0);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("upa router"), std::string::npos);
  EXPECT_NE(stats.value().find("healthy"), std::string::npos);

  Router::Stats s = router.stats();
  EXPECT_EQ(s.routed, 1u);
  EXPECT_EQ(s.replies, 1u);
  router.Stop();
}

// The differential: one service vs a 4-shard cluster, same workload, same
// order. Released bits, budget ledgers and epochs must match per dataset.
TEST(ClusterRouterTest, FourShardClusterIsBitIdenticalToOneService) {
  const std::vector<std::string> datasets = {"alpha", "beta",  "gamma",
                                             "delta", "omega", "zeta"};
  struct Step {
    std::string dataset;
    std::string sql;
    uint64_t seed;
  };
  std::vector<Step> workload;
  for (int round = 0; round < 3; ++round) {
    for (const std::string& ds : datasets) {
      workload.push_back({ds, "count:" + std::to_string(300 + 100 * round),
                          uint64_t(1000 + round)});
      // A literal repeat in the same round: exercises the sensitivity
      // cache and the repeat-query defense on whichever shard owns `ds`.
      workload.push_back({ds, "count:400", 77});
    }
  }

  // (a) Baseline: everything on one service, driven directly.
  std::vector<uint64_t> baseline_bits;
  std::map<std::string, double> baseline_spent;
  {
    Shard single;
    auto connected = net::Client::Connect("127.0.0.1", single.server.port());
    ASSERT_TRUE(connected.ok());
    std::unique_ptr<net::Client> client = std::move(connected).value();
    for (const Step& step : workload) {
      auto result =
          client->Query(MakeQuery(step.dataset, step.sql, step.seed));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_TRUE(result.value().ok())
          << result.value().status().ToString();
      baseline_bits.push_back(Bits(result.value().response.released));
    }
    for (const std::string& ds : datasets) {
      baseline_spent[ds] = single.service.accountant().Spent(ds);
      EXPECT_EQ(single.service.Epoch(ds), 0u);
    }
  }

  // (b) The same workload through the router over four shards.
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<ShardAddress> addrs;
  for (int i = 0; i < 4; ++i) {
    shards.push_back(std::make_unique<Shard>());
    addrs.push_back(shards.back()->address());
  }
  Router router(addrs);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    for (size_t i = 0; i < addrs.size(); ++i) {
      if (!router.ShardHealthy(i)) return false;
    }
    return true;
  }));

  auto connected = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<net::Client> client = std::move(connected).value();
  for (size_t i = 0; i < workload.size(); ++i) {
    const Step& step = workload[i];
    auto result = client->Query(MakeQuery(step.dataset, step.sql, step.seed));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result.value().ok()) << result.value().status().ToString();
    EXPECT_EQ(Bits(result.value().response.released), baseline_bits[i])
        << "step " << i << " (" << step.dataset << ", " << step.sql << ")";
  }

  // Placement is real: with 6 datasets on 4 shards at least two shards own
  // something, and every dataset's budget lives wholly on its ring owner.
  std::set<size_t> owners;
  for (const std::string& ds : datasets) {
    const size_t owner = router.ring().ShardFor(ds);
    owners.insert(owner);
    for (size_t s = 0; s < shards.size(); ++s) {
      const double spent = shards[s]->service.accountant().Spent(ds);
      if (s == owner) {
        EXPECT_DOUBLE_EQ(spent, baseline_spent[ds]) << ds;
      } else {
        EXPECT_DOUBLE_EQ(spent, 0.0) << ds << " leaked onto shard " << s;
      }
      EXPECT_EQ(shards[s]->service.Epoch(ds), 0u);
    }
  }
  EXPECT_GT(owners.size(), 1u);
  router.Stop();
}

TEST(ClusterRouterTest, PerShardInFlightCapRejectsWithResourceExhausted) {
  Shard shard;
  RouterConfig cfg;
  cfg.max_inflight_per_shard = 1;
  Router router({shard.address()}, cfg);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  auto connected = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<net::Client> client = std::move(connected).value();

  // First query parks behind the gate; the second overflows the cap.
  auto tag1 = client->Send(MakeQuery("ds", "gate:200", 1));
  ASSERT_TRUE(tag1.ok());
  ASSERT_TRUE(WaitFor([&] { return router.stats().routed == 1; }));
  auto tag2 = client->Send(MakeQuery("ds", "count:200", 2));
  ASSERT_TRUE(tag2.ok());
  auto rejected = client->Await(tag2.value());
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected.value().code, StatusCode::kResourceExhausted);

  shard.gate->store(true, std::memory_order_release);
  auto first = client->Await(tag1.value());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().ok()) << first.value().status().ToString();
  EXPECT_EQ(router.stats().rejected_backpressure, 1u);
  router.Stop();
}

TEST(ClusterRouterTest, DeadShardRejectsWithUnavailable) {
  // Nothing listens on the address: the link never turns healthy.
  auto port = PickFreePort();
  ASSERT_TRUE(port.ok());
  RouterConfig cfg;
  cfg.backoff_max_ms = 50.0;
  std::vector<ShardAddress> dead = {{"127.0.0.1", port.value()}};
  Router router(dead, cfg);
  ASSERT_TRUE(router.Start().ok());

  auto connected = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<net::Client> client = std::move(connected).value();
  auto result = client->Query(MakeQuery("ds", "count:100", 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().code, StatusCode::kUnavailable);
  EXPECT_GE(router.stats().rejected_unavailable, 1u);
  router.Stop();
}

TEST(ClusterRouterTest, ShardDeathFailsInFlightQueriesOver) {
  RouterConfig cfg;
  cfg.backoff_max_ms = 100.0;
  auto shard = std::make_unique<Shard>();
  const ShardAddress addr = shard->address();
  Router router({addr}, cfg);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  auto connected = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<net::Client> client = std::move(connected).value();

  // Park a query behind the gate, then kill the shard under it. The
  // server's destructor force-closes after its drain timeout; shorten the
  // wait by opening the gate right after Stop() starts tearing down.
  auto tag = client->Send(MakeQuery("ds", "gate:200", 1));
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(WaitFor([&] { return router.stats().routed == 1; }));

  std::thread killer([&] {
    shard->gate->store(true, std::memory_order_release);
    shard.reset();  // closes the shard's sockets
  });
  auto result = client->Await(tag.value());
  killer.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Either the shard finished the release before its sockets died (OK) or
  // the router failed the route over (UNAVAILABLE). Both are acceptable
  // outcomes of this race; what is NOT acceptable is a hang or a broken
  // connection, which Await would surface as a transport error.
  if (!result.value().ok()) {
    EXPECT_EQ(result.value().code, StatusCode::kUnavailable);
    EXPECT_GE(router.stats().failed_over_inflight, 1u);
  }

  // The client connection survives a shard failover.
  auto after = client->Query(MakeQuery("other", "count:100", 2));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  router.Stop();
}

TEST(ClusterRouterTest, DuplicateClientTagsAcrossConnectionsBothAnswered) {
  // Two clients may pick the SAME client_tag: the router's re-tagging must
  // keep their responses apart. One query is valid, the other uses a SQL
  // the shard rejects — each client must get ITS outcome back.
  auto shard = std::make_unique<Shard>();
  shard->gate->store(true, std::memory_order_release);
  Router router({shard->address()});
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  auto conn_a = net::Client::Connect("127.0.0.1", router.port());
  auto conn_b = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(conn_a.ok() && conn_b.ok());
  std::unique_ptr<net::Client> a = std::move(conn_a).value();
  std::unique_ptr<net::Client> b = std::move(conn_b).value();

  net::WireQuery good = MakeQuery("ds", "count:100", 1);
  good.client_tag = 7;
  net::WireQuery bad = MakeQuery("ds", "nonsense:1", 2);
  bad.client_tag = 7;  // same tag, different connection
  auto tag_a = a->Send(good);
  auto tag_b = b->Send(bad);
  ASSERT_TRUE(tag_a.ok() && tag_b.ok());

  auto result_a = a->Await(tag_a.value());
  auto result_b = b->Await(tag_b.value());
  ASSERT_TRUE(result_a.ok()) << result_a.status().ToString();
  ASSERT_TRUE(result_b.ok()) << result_b.status().ToString();
  EXPECT_TRUE(result_a.value().ok()) << result_a.value().message;
  EXPECT_EQ(result_b.value().code, StatusCode::kInvalidArgument)
      << result_b.value().message;
  router.Stop();
}

TEST(ClusterRouterTest, ReconnectsAfterShardRestartAtSameAddress) {
  RouterConfig cfg;
  cfg.backoff_max_ms = 50.0;
  auto shard = std::make_unique<Shard>();
  // Restart needs the same port; grab it before killing the first server.
  const uint16_t port = shard->server.port();
  Router router({ShardAddress{"127.0.0.1", port}}, cfg);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  shard.reset();
  ASSERT_TRUE(WaitFor([&] { return !router.ShardHealthy(0); }));

  // New shard process stand-in at the same address.
  service::ServiceConfig cfg2 = FastConfig();
  auto gate = std::make_shared<std::atomic<bool>>(true);
  service::UpaService service2(&Ctx(), cfg2);
  net::ServerConfig net_cfg;
  net_cfg.port = port;
  net::Server server2(&service2, ToyCompiler(gate), net_cfg);
  Status started = server2.Start();
  // The old socket lingers in TIME_WAIT occasionally; retry briefly.
  for (int i = 0; i < 50 && !started.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    started = server2.Start();
  }
  ASSERT_TRUE(started.ok()) << started.ToString();
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  auto connected = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<net::Client> client = std::move(connected).value();
  auto result = client->Query(MakeQuery("ds", "count:300", 3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok()) << result.value().status().ToString();
  EXPECT_GE(router.stats().shard_reconnects, 1u);
  router.Stop();
  server2.Stop();
}

}  // namespace
}  // namespace upa::cluster
