#include "common/cancel.h"

namespace upa {

thread_local CancelToken* CancelScope::current_ = nullptr;

namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void CancelToken::Cancel(StatusCode code, std::string message) {
  UPA_CHECK_MSG(code == StatusCode::kCancelled ||
                    code == StatusCode::kDeadlineExceeded,
                "CancelToken::Cancel takes kCancelled or kDeadlineExceeded");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tripped_.load(std::memory_order_relaxed)) return;  // first wins
    code_ = code;
    message_ = std::move(message);
    // Release: the store publishes code_/message_ to cancelled() readers.
    tripped_.store(true, std::memory_order_release);
  }
}

void CancelToken::SetDeadlineAfterMillis(int64_t millis) {
  if (millis <= 0) return;
  deadline_ns_.store(SteadyNowNanos() + millis * 1'000'000,
                     std::memory_order_relaxed);
}

Status CancelToken::Check() {
  if (!tripped_.load(std::memory_order_acquire)) {
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && SteadyNowNanos() > deadline) {
      Cancel(StatusCode::kDeadlineExceeded, "deadline exceeded");
    }
  }
  return status();
}

Status CancelToken::status() const {
  if (!tripped_.load(std::memory_order_acquire)) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  return Status(code_, message_);
}

}  // namespace upa
