// QueryInstance: the contract between a concrete query (TPC-H plan, KMeans,
// Linear Regression, or anything a user writes against the dp_api) and the
// generic UPA runner.
//
// The runner owns phases 1 (Partition & Sample), 3b (exclusion scans over
// the mapped sample), and 4 (iDP Enforcement). The query supplies
// `execute_phases`, which performs phase 2 (Parallel Map) and the S' half
// of phase 3 (Union-Preserving Reduce) on the engine — including, for join
// queries, the second join/shuffle pass over the sampled records that the
// paper's joinDP performs (§V-C).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "engine/context.h"
#include "upa/types.h"

namespace upa::core {

/// What `execute_phases` returns.
struct MappedBatches {
  /// Reduced value of each enforcer partition of S' (the records that were
  /// NOT sampled). Partition of record i is i % num_partitions. This is
  /// Algorithm 1's {R^(s')_j} — computed once and reused everywhere.
  std::vector<Vec> sprime_partials;
  /// M(s_i) for each sampled record, aligned with `sample_indices`.
  std::vector<Vec> sample_mapped;
  /// M(s̄_i) for each synthetic record drawn from the domain D \ x
  /// (the "added record" side of the neighbour sampling).
  std::vector<Vec> domain_mapped;
};

struct QueryInstance {
  std::string name;
  engine::ExecContext* ctx = nullptr;
  /// |x|: number of records in the private input dataset.
  size_t num_records = 0;

  /// Phase 2 + S'-side of phase 3. `sample_indices` are the sorted global
  /// indices of S; `num_partitions` is the enforcer partition count
  /// (record i belongs to partition i % num_partitions); `num_domain` is
  /// how many synthetic domain records to map; `seed` drives any
  /// randomness in the synthetic records.
  std::function<MappedBatches(std::span<const size_t> sample_indices,
                              size_t num_partitions, size_t num_domain,
                              uint64_t seed)>
      execute_phases;

  /// Record-independent post-processing of the reduced value (DP-safe by
  /// the post-processing theorem). Defaults to identity.
  std::function<Vec(const Vec&)> post;

  /// The released scalar, the quantity whose sensitivity UPA infers.
  /// Defaults to ScalarOf (first coordinate).
  std::function<double(const Vec&)> scalarize;

  /// Apply post with the identity default.
  Vec Post(const Vec& v) const { return post ? post(v) : v; }
  /// Apply scalarize with the default.
  double Scalarize(const Vec& v) const {
    return scalarize ? scalarize(v) : ScalarOf(v);
  }
  /// f(reduced) = scalarize(post(reduced)): the query's released output
  /// for a given reduced value.
  double OutputOf(const Vec& reduced) const { return Scalarize(Post(reduced)); }
};

}  // namespace upa::core
