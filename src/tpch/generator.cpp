#include "tpch/generator.h"

#include <algorithm>

#include "common/status.h"

namespace upa::tpch {

using rel::ColumnDef;
using rel::Row;
using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

namespace {

Schema LineitemSchema() {
  return Schema({{"l_orderkey", ValueType::kInt},
                 {"l_partkey", ValueType::kInt},
                 {"l_suppkey", ValueType::kInt},
                 {"l_quantity", ValueType::kDouble},
                 {"l_extendedprice", ValueType::kDouble},
                 {"l_discount", ValueType::kDouble},
                 {"l_shipdate", ValueType::kInt},
                 {"l_commitdate", ValueType::kInt},
                 {"l_receiptdate", ValueType::kInt},
                 {"l_returnflag", ValueType::kString}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", ValueType::kInt},
                 {"o_custkey", ValueType::kInt},
                 {"o_orderdate", ValueType::kInt},
                 {"o_orderpriority", ValueType::kString},
                 {"o_orderstatus", ValueType::kString}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", ValueType::kInt},
                 {"c_nationkey", ValueType::kInt},
                 {"c_mktsegment", ValueType::kString}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", ValueType::kInt},
                 {"p_brand", ValueType::kString},
                 {"p_type", ValueType::kString},
                 {"p_size", ValueType::kInt}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", ValueType::kInt},
                 {"s_nationkey", ValueType::kInt},
                 {"s_complaint", ValueType::kInt}});
}

Schema PartsuppSchema() {
  return Schema({{"ps_partkey", ValueType::kInt},
                 {"ps_suppkey", ValueType::kInt},
                 {"ps_availqty", ValueType::kInt},
                 {"ps_supplycost", ValueType::kDouble}});
}

Schema NationSchema() {
  return Schema({{"n_nationkey", ValueType::kInt},
                 {"n_name", ValueType::kString}});
}

template <typename T>
const T& PickUniform(const std::vector<T>& pool, Rng& rng) {
  return pool[rng.UniformU64(pool.size())];
}

}  // namespace

const std::vector<std::string>& Brands() {
  static const std::vector<std::string> kBrands = {
      "Brand#11", "Brand#12", "Brand#21", "Brand#23", "Brand#31",
      "Brand#34", "Brand#41", "Brand#45", "Brand#52", "Brand#55"};
  return kBrands;
}

const std::vector<std::string>& PartTypes() {
  static const std::vector<std::string> kTypes = {
      "STANDARD BRUSHED", "MEDIUM POLISHED", "ECONOMY ANODIZED",
      "SMALL PLATED",     "LARGE BURNISHED", "PROMO BRUSHED",
      "STANDARD POLISHED"};
  return kTypes;
}

const std::vector<std::string>& MarketSegments() {
  static const std::vector<std::string> kSegs = {
      "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"};
  return kSegs;
}

const std::vector<std::string>& OrderPriorities() {
  static const std::vector<std::string> kPrios = {
      "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
  return kPrios;
}

const std::vector<std::string>& NationNames() {
  static const std::vector<std::string> kNations = {
      "ALGERIA",    "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
      "ETHIOPIA",   "FRANCE",    "GERMANY", "INDIA",          "INDONESIA",
      "IRAN",       "IRAQ",      "JAPAN",   "JORDAN",         "KENYA",
      "MOROCCO",    "MOZAMBIQUE", "PERU",   "CHINA",          "ROMANIA",
      "SAUDI ARABIA", "VIETNAM", "RUSSIA",  "UNITED KINGDOM", "UNITED STATES"};
  return kNations;
}

Row TpchDataset::MakeLineitemRow(Rng& rng, int64_t orderkey) const {
  int64_t partkey = static_cast<int64_t>(
      rng.Zipf(config_.num_parts(), config_.reference_skew));
  int64_t suppkey = static_cast<int64_t>(
      rng.Zipf(config_.num_suppliers(), config_.reference_skew));
  double quantity = 1.0 + static_cast<double>(rng.UniformU64(50));
  double price = quantity * rng.UniformDouble(900.0, 1100.0);
  double discount = 0.01 * static_cast<double>(rng.UniformU64(11));  // 0..0.10
  int64_t shipdate = rng.UniformInt(0, kDateSpanDays - 1);
  int64_t commitdate =
      std::min<int64_t>(kDateSpanDays - 1, shipdate + rng.UniformInt(0, 60));
  int64_t receiptdate =
      std::min<int64_t>(kDateSpanDays - 1, shipdate + rng.UniformInt(1, 45));
  std::string returnflag = rng.Bernoulli(0.25) ? "R" : "N";
  return Row{Value{orderkey},    Value{partkey},    Value{suppkey},
             Value{quantity},    Value{price},      Value{discount},
             Value{shipdate},    Value{commitdate}, Value{receiptdate},
             Value{returnflag}};
}

Row TpchDataset::MakeOrdersRow(Rng& rng, int64_t orderkey) const {
  int64_t custkey =
      static_cast<int64_t>(1 + rng.UniformU64(config_.num_customers()));
  int64_t orderdate = rng.UniformInt(0, kDateSpanDays - 1);
  std::string priority = PickUniform(OrderPriorities(), rng);
  std::string status = rng.Bernoulli(0.45) ? "F" : "O";
  return Row{Value{orderkey}, Value{custkey}, Value{orderdate},
             Value{priority}, Value{status}};
}

Row TpchDataset::MakeCustomerRow(Rng& rng, int64_t custkey) const {
  int64_t nationkey =
      static_cast<int64_t>(rng.UniformU64(TpchConfig::kNumNations));
  return Row{Value{custkey}, Value{nationkey},
             Value{PickUniform(MarketSegments(), rng)}};
}

Row TpchDataset::MakePartRow(Rng& rng, int64_t partkey) const {
  return Row{Value{partkey}, Value{PickUniform(Brands(), rng)},
             Value{PickUniform(PartTypes(), rng)},
             Value{static_cast<int64_t>(1 + rng.UniformU64(50))}};
}

Row TpchDataset::MakeSupplierRow(Rng& rng, int64_t suppkey) const {
  // Round-robin nation assignment guarantees every nation has suppliers at
  // any scale (Q11/Q21 filter on specific nations).
  int64_t nationkey = (suppkey - 1) % TpchConfig::kNumNations;
  int64_t complaint = rng.Bernoulli(0.05) ? 1 : 0;
  return Row{Value{suppkey}, Value{nationkey}, Value{complaint}};
}

Row TpchDataset::MakePartsuppRow(Rng& rng, int64_t partkey,
                                 int64_t suppkey) const {
  return Row{Value{partkey}, Value{suppkey},
             Value{static_cast<int64_t>(1 + rng.UniformU64(9999))},
             Value{rng.UniformDouble(1.0, 1000.0)}};
}

TpchDataset::TpchDataset(TpchConfig config) : config_(config) {
  Rng rng = Rng::ForStream(config_.seed, "tpch/generator");

  // nation
  std::vector<Row> nations;
  for (size_t i = 0; i < TpchConfig::kNumNations; ++i) {
    nations.push_back(Row{Value{static_cast<int64_t>(i)},
                          Value{NationNames()[i]}});
  }
  nation_ = std::make_unique<Table>("nation", NationSchema(),
                                    std::move(nations));

  // supplier
  std::vector<Row> suppliers;
  for (size_t i = 1; i <= config_.num_suppliers(); ++i) {
    suppliers.push_back(MakeSupplierRow(rng, static_cast<int64_t>(i)));
  }
  supplier_ = std::make_unique<Table>("supplier", SupplierSchema(),
                                      std::move(suppliers));

  // part
  std::vector<Row> parts;
  for (size_t i = 1; i <= config_.num_parts(); ++i) {
    parts.push_back(MakePartRow(rng, static_cast<int64_t>(i)));
  }
  part_ = std::make_unique<Table>("part", PartSchema(), std::move(parts));

  // partsupp: each part supplied by 1-4 Zipf-picked suppliers.
  std::vector<Row> partsupps;
  for (size_t p = 1; p <= config_.num_parts(); ++p) {
    size_t n_sup = 1 + rng.UniformU64(4);
    for (size_t s = 0; s < n_sup; ++s) {
      int64_t suppkey = static_cast<int64_t>(
          rng.Zipf(config_.num_suppliers(), config_.reference_skew));
      partsupps.push_back(
          MakePartsuppRow(rng, static_cast<int64_t>(p), suppkey));
    }
  }
  partsupp_ = std::make_unique<Table>("partsupp", PartsuppSchema(),
                                      std::move(partsupps));

  // customer
  std::vector<Row> customers;
  for (size_t i = 1; i <= config_.num_customers(); ++i) {
    customers.push_back(MakeCustomerRow(rng, static_cast<int64_t>(i)));
  }
  customer_ = std::make_unique<Table>("customer", CustomerSchema(),
                                      std::move(customers));

  // orders + lineitem (Zipf-skewed lineitems per order).
  std::vector<Row> orders;
  std::vector<Row> lineitems;
  for (size_t o = 1; o <= config_.num_orders; ++o) {
    orders.push_back(MakeOrdersRow(rng, static_cast<int64_t>(o)));
    size_t n_items = rng.Zipf(config_.max_lineitems_per_order, 0.8);
    for (size_t l = 0; l < n_items; ++l) {
      lineitems.push_back(MakeLineitemRow(rng, static_cast<int64_t>(o)));
    }
  }
  orders_ = std::make_unique<Table>("orders", OrdersSchema(),
                                    std::move(orders));
  lineitem_ = std::make_unique<Table>("lineitem", LineitemSchema(),
                                      std::move(lineitems));
}

rel::Catalog TpchDataset::catalog() const {
  return rel::Catalog{
      {"lineitem", lineitem_.get()}, {"orders", orders_.get()},
      {"customer", customer_.get()}, {"part", part_.get()},
      {"supplier", supplier_.get()}, {"partsupp", partsupp_.get()},
      {"nation", nation_.get()}};
}

const rel::Table& TpchDataset::table(const std::string& name) const {
  rel::Catalog cat = catalog();
  auto it = cat.find(name);
  UPA_CHECK_MSG(it != cat.end(), "unknown TPC-H table: " + name);
  return *it->second;
}

rel::Row TpchDataset::SampleRow(const std::string& name, Rng& rng) const {
  if (name == "lineitem") {
    int64_t orderkey =
        static_cast<int64_t>(1 + rng.UniformU64(config_.num_orders));
    return MakeLineitemRow(rng, orderkey);
  }
  if (name == "orders") {
    // A fresh order gets a fresh key beyond the existing range (a new
    // record, not a duplicate of an existing one).
    int64_t orderkey = static_cast<int64_t>(
        config_.num_orders + 1 + rng.UniformU64(config_.num_orders));
    return MakeOrdersRow(rng, orderkey);
  }
  if (name == "partsupp") {
    int64_t partkey = static_cast<int64_t>(
        rng.Zipf(config_.num_parts(), config_.reference_skew));
    int64_t suppkey = static_cast<int64_t>(
        rng.Zipf(config_.num_suppliers(), config_.reference_skew));
    return MakePartsuppRow(rng, partkey, suppkey);
  }
  if (name == "customer") {
    return MakeCustomerRow(
        rng, static_cast<int64_t>(config_.num_customers() + 1 +
                                  rng.UniformU64(config_.num_customers())));
  }
  if (name == "supplier") {
    return MakeSupplierRow(
        rng, static_cast<int64_t>(config_.num_suppliers() + 1 +
                                  rng.UniformU64(config_.num_suppliers())));
  }
  if (name == "part") {
    return MakePartRow(
        rng, static_cast<int64_t>(config_.num_parts() + 1 +
                                  rng.UniformU64(config_.num_parts())));
  }
  UPA_CHECK_MSG(false, "SampleRow: unsupported table " + name);
  return {};
}

std::vector<rel::Row> TpchDataset::RowsWithout(
    const std::string& name, const std::vector<size_t>& indices) const {
  const rel::Table& t = table(name);
  std::vector<rel::Row> out;
  out.reserve(t.NumRows() - indices.size());
  size_t cursor = 0;
  for (size_t i = 0; i < t.NumRows(); ++i) {
    if (cursor < indices.size() && indices[cursor] == i) {
      ++cursor;
      continue;
    }
    out.push_back(t.rows()[i]);
  }
  return out;
}

}  // namespace upa::tpch
