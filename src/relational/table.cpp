#include "relational/table.h"

#include <unordered_map>

#include "common/status.h"

namespace upa::rel {

Table::Table(std::string name, Schema schema, std::vector<Row> rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      rows_(std::move(rows)) {
  for (const Row& row : rows_) {
    UPA_CHECK_MSG(row.size() == schema_.NumColumns(),
                  "row arity mismatch in table " + name_);
  }
}

const Table::ColumnStats& Table::StatsFor(const std::string& column) const {
  auto it = stats_cache_.find(column);
  if (it != stats_cache_.end()) return it->second;

  size_t idx = schema_.IndexOf(column);
  std::unordered_map<Value, size_t, ValueHash, ValueEq> freq;
  freq.reserve(rows_.size());
  for (const Row& row : rows_) ++freq[row[idx]];

  ColumnStats stats;
  stats.distinct = freq.size();
  for (const auto& [value, count] : freq) {
    stats.max_frequency = std::max(stats.max_frequency, count);
  }
  return stats_cache_.emplace(column, stats).first->second;
}

size_t Table::MaxFrequency(const std::string& column) const {
  return StatsFor(column).max_frequency;
}

size_t Table::DistinctCount(const std::string& column) const {
  return StatsFor(column).distinct;
}

}  // namespace upa::rel
