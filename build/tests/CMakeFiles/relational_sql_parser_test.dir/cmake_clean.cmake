file(REMOVE_RECURSE
  "CMakeFiles/relational_sql_parser_test.dir/relational_sql_parser_test.cpp.o"
  "CMakeFiles/relational_sql_parser_test.dir/relational_sql_parser_test.cpp.o.d"
  "relational_sql_parser_test"
  "relational_sql_parser_test.pdb"
  "relational_sql_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_sql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
