# Empty dependencies file for upa_group_test.
# This may be replaced when dependencies are built.
