#include "upa/exclusion.h"

#include "common/status.h"

namespace upa::core {
namespace {

std::vector<Vec> NaiveExclusion(const std::vector<Vec>& mapped) {
  const size_t n = mapped.size();
  std::vector<Vec> out(n);
  for (size_t i = 0; i < n; ++i) {
    Vec acc = VecSum::Identity();
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      acc = VecSum::Combine(std::move(acc), mapped[j]);
    }
    out[i] = std::move(acc);
  }
  return out;
}

std::vector<Vec> ScanExclusion(const std::vector<Vec>& mapped) {
  const size_t n = mapped.size();
  // prefix[i] = m[0] ⊕ ... ⊕ m[i-1]  (prefix[0] = identity)
  // suffix[i] = m[i] ⊕ ... ⊕ m[n-1]  (suffix[n] = identity)
  std::vector<Vec> prefix(n + 1), suffix(n + 1);
  prefix[0] = VecSum::Identity();
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = VecSum::Combine(prefix[i], mapped[i]);
  }
  suffix[n] = VecSum::Identity();
  for (size_t i = n; i-- > 0;) {
    suffix[i] = VecSum::Combine(suffix[i + 1], mapped[i]);
  }
  std::vector<Vec> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = VecSum::Combine(prefix[i], suffix[i + 1]);
  }
  return out;
}

}  // namespace

std::vector<Vec> ExclusionAggregate(const std::vector<Vec>& mapped,
                                    ExclusionStrategy strategy) {
  UPA_CHECK_MSG(!mapped.empty(), "exclusion over an empty sample");
  switch (strategy) {
    case ExclusionStrategy::kNaive:
      return NaiveExclusion(mapped);
    case ExclusionStrategy::kScan:
      return ScanExclusion(mapped);
  }
  return {};
}

Vec TotalAggregate(const std::vector<Vec>& mapped) {
  return VecSum::Reduce(mapped);
}

}  // namespace upa::core
