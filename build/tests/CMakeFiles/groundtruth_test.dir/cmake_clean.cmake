file(REMOVE_RECURSE
  "CMakeFiles/groundtruth_test.dir/groundtruth_test.cpp.o"
  "CMakeFiles/groundtruth_test.dir/groundtruth_test.cpp.o.d"
  "groundtruth_test"
  "groundtruth_test.pdb"
  "groundtruth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groundtruth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
