#include <gtest/gtest.h>

#include "relational/expr.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace upa::rel {
namespace {

TEST(ValueTest, TypeOfAndNames) {
  EXPECT_EQ(TypeOf(Value{int64_t{1}}), ValueType::kInt);
  EXPECT_EQ(TypeOf(Value{1.5}), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), ValueType::kString);
  EXPECT_EQ(TypeName(ValueType::kInt), "int");
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(AsInt(Value{int64_t{42}}), 42);
  EXPECT_EQ(AsString(Value{std::string("hi")}), "hi");
  EXPECT_DOUBLE_EQ(AsNumeric(Value{int64_t{3}}), 3.0);
  EXPECT_DOUBLE_EQ(AsNumeric(Value{2.5}), 2.5);
  EXPECT_TRUE(IsNumeric(Value{int64_t{0}}));
  EXPECT_FALSE(IsNumeric(Value{std::string("0")}));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(ToString(Value{int64_t{7}}), "7");
  EXPECT_EQ(ToString(Value{std::string("abc")}), "abc");
  EXPECT_EQ(ToString(Value{2.5}), "2.5");
}

TEST(ValueTest, NumericCompareCrossesTypes) {
  EXPECT_EQ(Compare(Value{int64_t{1}}, Value{1.0}), 0);
  EXPECT_LT(Compare(Value{int64_t{1}}, Value{1.5}), 0);
  EXPECT_GT(Compare(Value{2.5}, Value{int64_t{2}}), 0);
  EXPECT_TRUE(ValueEquals(Value{int64_t{1}}, Value{1.0}));
  EXPECT_FALSE(ValueEquals(Value{int64_t{1}}, Value{std::string("1")}));
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Compare(Value{std::string("a")}, Value{std::string("b")}), 0);
  EXPECT_EQ(Compare(Value{std::string("a")}, Value{std::string("a")}), 0);
  EXPECT_GT(Compare(Value{std::string("b")}, Value{std::string("a")}), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(Value{int64_t{5}}), h(Value{5.0}));  // 5 == 5.0
  EXPECT_EQ(h(Value{std::string("k")}), h(Value{std::string("k")}));
  EXPECT_NE(h(Value{int64_t{5}}), h(Value{int64_t{6}}));
}

TEST(SchemaTest, FindAndIndexOf) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  EXPECT_EQ(s.NumColumns(), 2u);
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.Find("c").has_value());
  EXPECT_TRUE(s.Has("a"));
  EXPECT_NE(s.ToString().find("a:int"), std::string::npos);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema l({{"a", ValueType::kInt}});
  Schema r({{"b", ValueType::kString}, {"c", ValueType::kDouble}});
  Schema joined = Schema::Concat(l, r);
  EXPECT_EQ(joined.NumColumns(), 3u);
  EXPECT_EQ(joined.IndexOf("c"), 2u);
}

class ExprTest : public ::testing::Test {
 protected:
  Schema schema_{{{"x", ValueType::kInt},
                  {"y", ValueType::kDouble},
                  {"s", ValueType::kString}}};
  Row row_{Value{int64_t{10}}, Value{2.5}, Value{std::string("hello")}};
};

TEST_F(ExprTest, ColumnAndLiteral) {
  EXPECT_EQ(AsInt(Bind(Col("x"), schema_)(row_)), 10);
  EXPECT_DOUBLE_EQ(AsNumeric(Bind(Lit(3.5), schema_)(row_)), 3.5);
  EXPECT_EQ(AsString(Bind(Lit("z"), schema_)(row_)), "z");
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(AsNumeric(Bind(Add(Col("x"), Lit(int64_t{5})), schema_)(row_)), 15.0);
  EXPECT_DOUBLE_EQ(AsNumeric(Bind(Sub(Col("x"), Col("y")), schema_)(row_)), 7.5);
  EXPECT_DOUBLE_EQ(AsNumeric(Bind(Mul(Col("x"), Col("y")), schema_)(row_)), 25.0);
  EXPECT_DOUBLE_EQ(AsNumeric(Bind(Div(Col("x"), Lit(4.0)), schema_)(row_)), 2.5);
}

TEST_F(ExprTest, Comparisons) {
  auto truthy = [&](ExprPtr e) { return AsInt(Bind(e, schema_)(row_)) != 0; };
  EXPECT_TRUE(truthy(Eq(Col("x"), Lit(int64_t{10}))));
  EXPECT_TRUE(truthy(Eq(Col("x"), Lit(10.0))));  // cross-type numeric
  EXPECT_TRUE(truthy(Ne(Col("x"), Lit(int64_t{11}))));
  EXPECT_TRUE(truthy(Lt(Col("y"), Lit(3.0))));
  EXPECT_TRUE(truthy(Le(Col("y"), Lit(2.5))));
  EXPECT_TRUE(truthy(Gt(Col("x"), Col("y"))));
  EXPECT_TRUE(truthy(Ge(Col("x"), Lit(int64_t{10}))));
  EXPECT_FALSE(truthy(Lt(Col("x"), Col("y"))));
}

TEST_F(ExprTest, StringEquality) {
  auto pred = BindPredicate(Eq(Col("s"), Lit("hello")), schema_);
  EXPECT_TRUE(pred(row_));
  auto pred2 = BindPredicate(Ne(Col("s"), Lit("world")), schema_);
  EXPECT_TRUE(pred2(row_));
}

TEST_F(ExprTest, LogicalOperators) {
  auto t = Eq(Col("x"), Lit(int64_t{10}));
  auto f = Eq(Col("x"), Lit(int64_t{11}));
  EXPECT_TRUE(BindPredicate(And(t, t), schema_)(row_));
  EXPECT_FALSE(BindPredicate(And(t, f), schema_)(row_));
  EXPECT_TRUE(BindPredicate(Or(f, t), schema_)(row_));
  EXPECT_FALSE(BindPredicate(Or(f, f), schema_)(row_));
  EXPECT_TRUE(BindPredicate(Not(f), schema_)(row_));
}

TEST_F(ExprTest, InSet) {
  auto in = In(Col("x"), {Value{int64_t{1}}, Value{int64_t{10}}});
  EXPECT_TRUE(BindPredicate(in, schema_)(row_));
  auto not_in = In(Col("x"), {Value{int64_t{1}}, Value{int64_t{2}}});
  EXPECT_FALSE(BindPredicate(not_in, schema_)(row_));
  auto str_in = In(Col("s"), {Value{std::string("hello")}});
  EXPECT_TRUE(BindPredicate(str_in, schema_)(row_));
}

TEST_F(ExprTest, BindNumeric) {
  auto f = BindNumeric(Mul(Col("y"), Lit(2.0)), schema_);
  EXPECT_DOUBLE_EQ(f(row_), 5.0);
}

TEST_F(ExprTest, ToStringRendersTree) {
  auto e = And(Ge(Col("x"), Lit(int64_t{5})), Lt(Col("y"), Lit(3.0)));
  std::string s = e->ToString();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find(">="), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

TEST_F(ExprTest, ShortCircuitAndDoesNotEvaluateRhs) {
  // rhs would divide by zero if evaluated; short-circuit must prevent it.
  auto guard = Eq(Col("x"), Lit(int64_t{999}));  // false
  auto bomb = Gt(Div(Lit(1.0), Sub(Col("x"), Lit(int64_t{10}))), Lit(0.0));
  EXPECT_FALSE(BindPredicate(And(guard, bomb), schema_)(row_));
}

}  // namespace
}  // namespace upa::rel
