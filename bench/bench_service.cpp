// End-to-end service bench: SQL in at the TCP front door, iDP release out.
// One number per query for the full stack — wire encode/decode, the epoll
// event loop, admission + budget accounting, sensitivity inference (UPA's
// sample/domain phase runs on the columnar engine with fused kernels), and
// the Laplace release — so regressions anywhere in the path show up here
// even when the per-layer benches stay flat.
//
// Two sections:
//   * latency — each SQL query round-trips on an idle connection; best of
//     UPA_RUNS (first iteration discarded separately as "cold", since it
//     pays sensitivity inference before the cache warms);
//   * throughput — UPA_PIPELINE-deep windows of the query mix from
//     concurrent connections, wall-clock queries/sec.
//
// Emits BENCH_service.json (override with UPA_BENCH_JSON). Knobs:
// UPA_ORDERS, UPA_RUNS, UPA_THREADS, UPA_PIPELINE, UPA_SEED.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/server.h"
#include "queries/plan_query.h"
#include "relational/optimizer.h"
#include "relational/sql_parser.h"
#include "service/service.h"

using namespace upa;

namespace {

/// The upa_server compiler, minus the demo printing: SQL → optimized plan
/// → QueryInstance over the request's private table.
net::QueryCompiler MakeSqlCompiler(
    engine::ExecContext* ctx,
    std::shared_ptr<const rel::PlanExecutor> executor,
    const tpch::TpchDataset* data) {
  return [ctx, executor, data](
             const net::WireQuery& wire) -> Result<core::QueryInstance> {
    Result<rel::PlanPtr> parsed = rel::ParseSql(wire.sql);
    if (!parsed.ok()) return parsed.status();
    rel::OptimizerOptions opt;
    opt.private_table = wire.dataset_id;
    rel::PlanPtr plan = rel::Optimize(parsed.value(), data->catalog(), opt);
    tpch::TpchQuery query;
    query.name = "sql:" + wire.sql.substr(0, 40);
    query.plan = plan;
    query.private_table = wire.dataset_id;
    return queries::MakePlanQuery(ctx, executor, data, query, nullptr,
                                  /*optimize=*/false);
  };
}

struct BenchQuery {
  const char* name;
  const char* sql;
  const char* dataset;
};

const std::vector<BenchQuery>& Queries() {
  static const std::vector<BenchQuery> queries = {
      {"count_all", "SELECT COUNT(*) FROM lineitem", "lineitem"},
      {"count_filtered",
       "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25", "lineitem"},
      {"sum_revenue",
       "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
       "WHERE l_shipdate >= 365 AND l_shipdate < 730",
       "lineitem"},
      {"count_join",
       "SELECT COUNT(*) FROM orders JOIN lineitem "
       "ON o_orderkey = l_orderkey WHERE o_orderpriority = '1-URGENT'",
       "lineitem"},
  };
  return queries;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr
             ? fallback
             : static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  const size_t threads = env.threads == 0 ? 4 : env.threads;
  const size_t window = EnvSize("UPA_PIPELINE", 8);
  bench::PrintBanner("Service end-to-end — SQL over the wire", env);
  std::printf("engine pool threads: %zu, pipeline window: %zu\n\n", threads,
              window);

  tpch::TpchDataset data(tpch::TpchConfig{.num_orders = env.orders,
                                          .max_lineitems_per_order = 7,
                                          .reference_skew = 1.1,
                                          .seed = env.seed});
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = threads, .default_partitions = 4});
  rel::Catalog catalog = data.catalog();
  auto executor = std::make_shared<const rel::PlanExecutor>(&ctx, &catalog);

  service::ServiceConfig config;
  config.upa = env.MakeUpaConfig();
  config.budget_per_dataset = 1e9;  // latency, not budget, under test
  config.max_in_flight = threads;
  service::UpaService svc(&ctx, config);

  net::ServerConfig net_cfg;
  net_cfg.max_pipelined_per_connection = window;
  net::Server server(&svc, MakeSqlCompiler(&ctx, executor, &data), net_cfg);
  Status started = server.Start();
  UPA_CHECK_MSG(started.ok(), started.ToString());

  // --- Latency: sequential round-trips on one idle connection.
  auto connected = net::Client::Connect("127.0.0.1", server.port());
  UPA_CHECK_MSG(connected.ok(), connected.status().ToString());
  std::unique_ptr<net::Client> client = std::move(connected).value();

  std::string latency_json;
  TablePrinter ltable({"query", "cold (ms)", "warm best (ms)", "released"});
  for (const BenchQuery& q : Queries()) {
    double cold = 0.0, warm = 1e100, released = 0.0;
    for (size_t r = 0; r < std::max<size_t>(env.runs, 2); ++r) {
      net::WireQuery wire;
      wire.tenant = "bench";
      wire.dataset_id = q.dataset;
      wire.epsilon = 0.1;
      wire.seed = env.seed + r;
      wire.sql = q.sql;
      Stopwatch timer;
      auto result = client->Query(wire);
      const double dt = timer.ElapsedSeconds();
      UPA_CHECK_MSG(result.ok(), result.status().ToString());
      UPA_CHECK_MSG(result.value().ok(), result.value().status().ToString());
      released = result.value().response.released;
      if (r == 0) {
        cold = dt;  // pays sensitivity inference; later runs hit the cache
      } else {
        warm = std::min(warm, dt);
      }
    }
    ltable.AddRow({q.name, TablePrinter::FormatDouble(cold * 1e3, 3),
                   TablePrinter::FormatDouble(warm * 1e3, 3),
                   TablePrinter::FormatDouble(released, 1)});
    if (!latency_json.empty()) latency_json += ",\n";
    latency_json += "    {\"name\": \"" + std::string(q.name) +
                    "\", \"cold_ms\": " + JsonNum(cold * 1e3) +
                    ", \"warm_ms\": " + JsonNum(warm * 1e3) + "}";
  }
  client.reset();
  ltable.Print("end-to-end latency per SQL query (one idle connection)");

  // --- Throughput: concurrent connections, pipelined query mix.
  std::string throughput_json;
  TablePrinter ttable({"clients", "queries", "wall (ms)", "q/s"});
  for (size_t clients : {1u, 2u, 4u}) {
    const size_t per_client = env.runs * Queries().size();
    Stopwatch wall;
    std::vector<std::thread> workers;
    for (size_t i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        auto conn = net::Client::Connect("127.0.0.1", server.port());
        UPA_CHECK_MSG(conn.ok(), conn.status().ToString());
        std::unique_ptr<net::Client> c = std::move(conn).value();
        std::deque<uint64_t> outstanding;
        auto await_one = [&] {
          uint64_t tag = outstanding.front();
          outstanding.pop_front();
          auto result = c->Await(tag);
          UPA_CHECK_MSG(result.ok(), result.status().ToString());
          UPA_CHECK_MSG(result.value().ok(),
                        result.value().status().ToString());
        };
        for (size_t q = 0; q < per_client; ++q) {
          if (outstanding.size() >= window) await_one();
          const BenchQuery& bq = Queries()[q % Queries().size()];
          net::WireQuery wire;
          wire.tenant = "t" + std::to_string(i);
          wire.dataset_id = bq.dataset;
          wire.epsilon = 0.1;
          wire.seed = env.seed + i * 100003 + q;
          wire.sql = bq.sql;
          auto tag = c->Send(wire);
          UPA_CHECK_MSG(tag.ok(), tag.status().ToString());
          outstanding.push_back(tag.value());
        }
        while (!outstanding.empty()) await_one();
      });
    }
    for (auto& worker : workers) worker.join();
    const double wall_seconds = wall.ElapsedSeconds();
    const size_t queries = clients * per_client;
    ttable.AddRow({std::to_string(clients), std::to_string(queries),
                   TablePrinter::FormatDouble(wall_seconds * 1e3, 2),
                   TablePrinter::FormatDouble(queries / wall_seconds, 1)});
    if (!throughput_json.empty()) throughput_json += ",\n";
    throughput_json +=
        "    {\"clients\": " + std::to_string(clients) +
        ", \"queries\": " + std::to_string(queries) +
        ", \"wall_ms\": " + JsonNum(wall_seconds * 1e3) +
        ", \"qps\": " + JsonNum(queries / wall_seconds) + "}";
  }
  ttable.Print("throughput vs concurrent wire clients (mixed SQL)");
  server.Stop();

  const char* path_env = std::getenv("UPA_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  UPA_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::fprintf(f,
               "{\n  \"experiment\": \"service_e2e\",\n"
               "  \"orders\": %zu,\n  \"runs\": %zu,\n  \"threads\": %zu,\n"
               "  \"pipeline\": %zu,\n  \"seed\": %llu,\n"
               "  \"latency\": [\n%s\n  ],\n"
               "  \"throughput\": [\n%s\n  ]\n}\n",
               env.orders, env.runs, threads, window,
               static_cast<unsigned long long>(env.seed),
               latency_json.c_str(), throughput_json.c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
