# Empty compiler generated dependencies file for private_ml.
# This may be replaced when dependencies are built.
