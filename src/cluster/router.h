// Cluster router: one process speaking the UPA wire protocol to clients,
// fanning queries out over N shard servers by consistent-hashing the
// dataset id (ring.h). Clients see a single server; privacy enforcement
// stays entirely shard-local — each shard owns the budget, enforcer
// registry, epoch and journal for its dataset subset, so the router holds
// no privacy state and can be restarted freely.
//
// Mechanics (mirrors net::Server's threading contract):
//   - one EventLoop thread owns every fd: the listen socket, all client
//     connections and all shard links. No locks on the data path; the only
//     cross-thread values are the stats atomics.
//   - client query frames are decoded just enough to read the dataset id,
//     re-tagged with a router-unique tag (two clients may use the same
//     client_tag), and re-encoded onto the owning shard's link; responses
//     are re-tagged back. Doubles travel as raw IEEE bits through the
//     decode/encode round trip, so routing is bit-invisible.
//   - per-shard backpressure: a shard at its in-flight cap (or with a
//     backed-up write buffer) rejects further queries with
//     kResourceExhausted, the same code the server uses for pipeline
//     overflow — clients already handle it.
//   - failover: a dead shard link fails its in-flight queries with
//     kUnavailable, then redials with bounded exponential backoff. A
//     reconnected shard takes traffic only after answering a health probe
//     (a stats request) — by then the shard process has replayed its
//     journal, so the recovered registry/ledger/epoch state is already
//     bit-identical to the pre-crash acknowledged state.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.h"
#include "net/event_loop.h"
#include "net/wire.h"

namespace upa::cluster {

struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  size_t max_connections = 1024;
  size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  /// Per-shard cap on routed-but-unanswered queries; overflow is rejected
  /// with kResourceExhausted (backpressure, not queueing).
  size_t max_inflight_per_shard = 128;
  /// A client (or shard) write buffer above this pauses reads from the
  /// other side of that connection until it drains.
  size_t write_buffer_high_bytes = 4u << 20;
  /// Shard dial: per-attempt connect timeout and the redial backoff range.
  double dial_timeout_ms = 2000.0;
  double backoff_initial_ms = 20.0;
  double backoff_max_ms = 2000.0;
  /// Health probes: a reconnected shard must answer one before taking
  /// traffic; healthy-but-idle shards are probed every interval. 0
  /// disables idle probing (the connect-time probe always runs).
  double health_probe_interval_ms = 500.0;
  double health_probe_timeout_ms = 2000.0;
  double tick_interval_ms = 5.0;
  double drain_timeout_ms = 5000.0;
  size_t ring_vnodes = 64;
  net::PollerKind poller = net::PollerKind::kEpoll;
};

class Router {
 public:
  Router(std::vector<ShardAddress> shards, RouterConfig config = {});
  ~Router();  // Stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return port_; }
  const ConsistentHashRing& ring() const { return ring_; }

  /// True once the shard's link passed its health probe (and the link is
  /// still up). Thread-safe.
  bool ShardHealthy(size_t shard) const;

  struct Stats {
    uint64_t accepted = 0;
    uint64_t open_connections = 0;
    uint64_t routed = 0;
    uint64_t replies = 0;
    uint64_t rejected_unavailable = 0;
    uint64_t rejected_backpressure = 0;
    uint64_t shard_reconnects = 0;
    uint64_t failed_over_inflight = 0;
    uint64_t protocol_errors = 0;
  };
  Stats stats() const;
  std::string StatsText() const;

 private:
  struct ClientConn {
    explicit ClientConn(size_t max_frame)
        : assembler(max_frame) {}
    uint64_t id = 0;
    int fd = -1;
    net::FrameAssembler assembler;
    std::string write_buffer;
    size_t write_offset = 0;
    bool reads_paused = false;
    bool close_after_flush = false;
    /// Queries routed to a shard and not yet answered back to this client.
    size_t inflight = 0;
  };

  struct Route {
    uint64_t conn_id = 0;
    uint64_t client_tag = 0;
  };

  struct ShardLink {
    enum class State { kBackoff, kConnecting, kProbing, kHealthy };
    size_t index = 0;
    ShardAddress addr;
    State state = State::kBackoff;
    int fd = -1;
    std::unique_ptr<net::FrameAssembler> assembler;
    std::string write_buffer;
    size_t write_offset = 0;
    double backoff_ms = 0.0;
    int64_t next_dial_ns = 0;   // kBackoff: earliest redial
    int64_t dial_deadline_ns = 0;
    int64_t probe_deadline_ns = 0;
    int64_t last_probe_ns = 0;
    bool probe_outstanding = false;
    std::map<uint64_t, Route> inflight;  // router tag → origin
  };

  // Loop-thread only.
  void HandleAccept();
  void HandleClientReadable(uint64_t conn_id);
  void HandleClientWritable(uint64_t conn_id);
  void ProcessClientFrames(ClientConn& conn);
  void RouteQuery(ClientConn& conn, net::WireQuery query);
  void RespondToClient(ClientConn& conn, const net::WireResult& result);
  void QueueClientWrite(ClientConn& conn, std::string bytes);
  void FlushClient(ClientConn& conn);
  void UpdateClientInterest(ClientConn& conn);
  void AbortClient(ClientConn& conn, const Status& error);
  void CloseClient(uint64_t conn_id);

  void StartDial(ShardLink& link);
  void HandleShardEvent(size_t shard, bool readable, bool writable,
                        bool error);
  void ProcessShardFrames(ShardLink& link);
  void QueueShardWrite(ShardLink& link, std::string bytes);
  void FlushShard(ShardLink& link);
  void UpdateShardInterest(ShardLink& link);
  void SendProbe(ShardLink& link);
  /// Tears the link down: fails in-flight routes with kUnavailable back to
  /// their clients and schedules a backoff redial.
  void FailShard(ShardLink& link, const Status& reason);
  void OnTick();

  std::vector<ShardAddress> shard_addrs_;
  RouterConfig config_;
  ConsistentHashRing ring_;
  net::EventLoop loop_;
  std::thread loop_thread_;
  bool started_ = false;
  bool stopped_ = false;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  uint64_t next_conn_id_ = 1;
  uint64_t next_router_tag_ = 1;
  std::map<uint64_t, std::unique_ptr<ClientConn>> connections_;
  std::vector<ShardLink> links_;

  std::unique_ptr<std::atomic<bool>[]> healthy_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> replies_{0};
  std::atomic<uint64_t> rejected_unavailable_{0};
  std::atomic<uint64_t> rejected_backpressure_{0};
  std::atomic<uint64_t> shard_reconnects_{0};
  std::atomic<uint64_t> failed_over_inflight_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  /// Routed-but-unanswered queries across all shards (drain probe).
  std::atomic<uint64_t> total_inflight_{0};
};

}  // namespace upa::cluster
