file(REMOVE_RECURSE
  "CMakeFiles/upa_types_exclusion_test.dir/upa_types_exclusion_test.cpp.o"
  "CMakeFiles/upa_types_exclusion_test.dir/upa_types_exclusion_test.cpp.o.d"
  "upa_types_exclusion_test"
  "upa_types_exclusion_test.pdb"
  "upa_types_exclusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_types_exclusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
