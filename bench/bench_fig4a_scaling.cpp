// Figure 4(a) reproduction: UPA's overhead versus dataset size.
//
// Paper result shape: the normalized overhead *decreases* as the dataset
// grows, because the sensitivity-inference cost is governed by the fixed
// sample size n (constant work) while the native query cost grows linearly.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "upa/runner.h"

int main() {
  using namespace upa;
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Figure 4(a) — overhead vs dataset size", env);

  // Scale multipliers relative to the base size.
  const std::vector<double> scales = {0.5, 1.0, 2.0, 4.0};

  TablePrinter table({"Query", "scale", "records", "native (ms)", "UPA (ms)",
                      "normalized"});
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    for (double scale : scales) {
      bench::BenchEnv scaled = env;
      scaled.orders = static_cast<size_t>(env.orders * scale);
      scaled.ml_points = static_cast<size_t>(env.ml_points * scale);
      queries::QuerySuite suite(scaled.MakeSuiteConfig());

      core::UpaConfig upa_cfg = env.MakeUpaConfig();
      core::UpaRunner runner(upa_cfg);

      // Warm the scan/block caches so both sides time steady-state.
      suite.RunNative(name);
      (void)runner.Run(suite.MakeInstance(name), env.seed + 999);

      std::vector<double> native_ms, upa_ms;
      for (size_t r = 0; r < std::max<size_t>(2, env.runs / 3); ++r) {
        Stopwatch watch;
        suite.RunNative(name);
        native_ms.push_back(watch.ElapsedMillis());
        auto result = runner.Run(suite.MakeInstance(name), env.seed + r);
        if (!result.ok()) {
          std::fprintf(stderr, "UPA failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        upa_ms.push_back(result.value().seconds.total * 1e3);
      }
      double normalized = Mean(upa_ms) / std::max(1e-9, Mean(native_ms));
      table.AddRow({name, TablePrinter::FormatDouble(scale, 1),
                    std::to_string(suite.NumPrivateRecords(name)),
                    TablePrinter::FormatDouble(Mean(native_ms), 2),
                    TablePrinter::FormatDouble(Mean(upa_ms), 2),
                    TablePrinter::FormatDouble(normalized, 2)});
    }
  }
  table.Print("Figure 4(a): normalized UPA time across dataset sizes "
              "(shape: decreasing with size)");
  return 0;
}
