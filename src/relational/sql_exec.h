// Executes a parsed single-block SELECT (relational/sql_parser.h) on the
// engine and returns a result table.
//
// The engine itself only runs scalar kAggregate plans, so grouped queries
// are lowered by enumeration: for each GROUP BY key the owning table's
// distinct values are collected (first-appearance order), the cross
// product forms the candidate groups, and every hoisted aggregate slot
// runs as a scalar plan over Filter(relation, key = value AND ...). A
// COUNT(*) probe runs first per group and empty groups are dropped — SQL
// groups are formed from surviving rows, so a key value the WHERE clause
// eliminates never yields a row. HAVING / select items / ORDER BY are then
// plain expressions over [group keys..., $agg0, $agg1, ...] evaluated with
// the row-expression machinery (relational/expr.h).
//
// This is deliberately the simple, obviously-correct lowering: each scalar
// run reuses the whole engine (fused kernels, scan cache, zone maps), and
// the per-group plans differ only in one pushed-down equality conjunct, so
// the public scan cache carries the shared work. The candidate-group cross
// product is capped (SqlExecOptions::max_groups) and overflow fails with
// RESOURCE_EXHAUSTED rather than running away.
//
// ExecuteSelect runs *public* queries: provenance options (private_table,
// include/exclude/replace rows, partitions, contributions) are rejected —
// the DP release path consumes single bare aggregates through ParseSql and
// the service layer instead.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/context.h"
#include "relational/executor.h"
#include "relational/sql_parser.h"

namespace upa::rel {

struct SqlExecOptions {
  /// Engine options for every scalar aggregate run. Provenance fields must
  /// be unset (see file comment).
  ExecOptions exec;
  /// Run each plan through the cost-based optimizer first.
  bool optimize = true;
  /// Force the fusion decision on every aggregate root (differential tests
  /// pin kFuse/kInterpret); kAuto keeps the optimizer's marking.
  FuseMode fuse = FuseMode::kAuto;
  /// Cap on candidate groups (the cross product of per-key distinct
  /// values). Exceeding it fails with RESOURCE_EXHAUSTED.
  size_t max_groups = 4096;
};

/// A materialized query result: one column per select item (display names
/// from the item's alias or source text), one row per group — or exactly
/// one row for scalar (non-grouped) queries.
struct SqlResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

/// Executes a parsed SELECT. See the file comment for the lowering.
Result<SqlResultSet> ExecuteSelect(engine::ExecContext* ctx,
                                   const Catalog& catalog,
                                   const SqlSelect& stmt,
                                   const SqlExecOptions& options = {});

/// Parse + execute in one step.
Result<SqlResultSet> ExecuteSql(engine::ExecContext* ctx,
                                const Catalog& catalog,
                                const std::string& sql,
                                const SqlExecOptions& options = {});

/// Total-order comparator over Values, safe for std::sort (unlike the
/// engine's Compare, whose NaN-equals-everything contract breaks strict
/// weak ordering). Numerics sort before strings, NaN after every number;
/// int/int compares exactly. Returns <0, 0, >0. Exposed for tests.
int TotalOrderCompare(const Value& a, const Value& b);

}  // namespace upa::rel
