# Empty dependencies file for bench_fig2a_rmse.
# This may be replaced when dependencies are built.
