#include "common/normal_fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace upa {
namespace {

TEST(FitNormalMleTest, RecoversParameters) {
  Rng rng(123);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.Normal(-4.0, 1.5);
  NormalParams p = FitNormalMle(xs);
  EXPECT_NEAR(p.mean, -4.0, 0.02);
  EXPECT_NEAR(p.stddev, 1.5, 0.02);
}

TEST(FitNormalMleTest, EmptyAndConstant) {
  NormalParams empty = FitNormalMle(std::vector<double>{});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);

  std::vector<double> constant(10, 3.0);
  NormalParams c = FitNormalMle(constant);
  EXPECT_DOUBLE_EQ(c.mean, 3.0);
  EXPECT_DOUBLE_EQ(c.stddev, 0.0);
}

TEST(StandardNormalQuantileTest, KnownValues) {
  EXPECT_NEAR(StandardNormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(StandardNormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(StandardNormalQuantile(0.99), 2.326347874, 1e-6);
  EXPECT_NEAR(StandardNormalQuantile(0.01), -2.326347874, 1e-6);
  EXPECT_NEAR(StandardNormalQuantile(0.8413447461), 1.0, 1e-6);
}

TEST(StandardNormalQuantileTest, SymmetryProperty) {
  for (double p : {0.001, 0.05, 0.2, 0.35, 0.49}) {
    EXPECT_NEAR(StandardNormalQuantile(p), -StandardNormalQuantile(1.0 - p),
                1e-9)
        << "p=" << p;
  }
}

TEST(StandardNormalQuantileTest, RoundTripsThroughCdf) {
  for (double p = 0.01; p < 1.0; p += 0.01) {
    double x = StandardNormalQuantile(p);
    double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-8) << "p=" << p;
  }
}

TEST(NormalQuantileTest, ScalesAndShifts) {
  NormalParams params{10.0, 2.0};
  EXPECT_NEAR(NormalQuantile(params, 0.5), 10.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(params, 0.975), 10.0 + 2.0 * 1.959963985, 1e-5);
}

TEST(IntervalTest, ClampAndContains) {
  Interval iv{-1.0, 3.0};
  EXPECT_DOUBLE_EQ(iv.width(), 4.0);
  EXPECT_TRUE(iv.Contains(0.0));
  EXPECT_TRUE(iv.Contains(-1.0));
  EXPECT_TRUE(iv.Contains(3.0));
  EXPECT_FALSE(iv.Contains(3.0001));
  EXPECT_DOUBLE_EQ(iv.Clamp(-5.0), -1.0);
  EXPECT_DOUBLE_EQ(iv.Clamp(5.0), 3.0);
  EXPECT_DOUBLE_EQ(iv.Clamp(1.0), 1.0);
}

TEST(NormalPercentileIntervalTest, MatchesAnalyticInterval) {
  Rng rng(321);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.Normal(5.0, 1.0);
  Interval iv = NormalPercentileInterval(xs, 1.0, 99.0);
  // True [P1, P99] of N(5,1) is 5 ± 2.3263.
  EXPECT_NEAR(iv.lo, 5.0 - 2.3263, 0.03);
  EXPECT_NEAR(iv.hi, 5.0 + 2.3263, 0.03);
}

TEST(NormalPercentileIntervalTest, DegenerateDataGivesPointInterval) {
  std::vector<double> xs(100, 7.0);
  Interval iv = NormalPercentileInterval(xs, 1.0, 99.0);
  EXPECT_DOUBLE_EQ(iv.lo, 7.0);
  EXPECT_DOUBLE_EQ(iv.hi, 7.0);
  EXPECT_DOUBLE_EQ(iv.width(), 0.0);
}

// Degenerate fit: identical observations have population stddev 0, and
// every quantile of the fitted "normal" collapses onto the mean. The
// interval must come back as the zero-width point [c, c] — this is exactly
// the constant-query case whose zero sensitivity UpaConfig::min_sensitivity
// floors downstream.
TEST(NormalPercentileIntervalTest, ZeroStddevCollapsesToPoint) {
  std::vector<double> xs(500, 3.25);
  NormalParams fit = FitNormalMle(xs);
  EXPECT_DOUBLE_EQ(fit.mean, 3.25);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
  Interval iv = NormalPercentileInterval(xs, 1.0, 99.0);
  EXPECT_DOUBLE_EQ(iv.lo, 3.25);
  EXPECT_DOUBLE_EQ(iv.hi, 3.25);
  EXPECT_DOUBLE_EQ(iv.width(), 0.0);
  EXPECT_TRUE(iv.Contains(3.25));
  EXPECT_FALSE(iv.Contains(3.25 + 1e-9));
}

TEST(NormalPercentileIntervalTest, ZeroStddevQuantilesAreMean) {
  NormalParams degenerate{-2.0, 0.0};
  for (double p : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(NormalQuantile(degenerate, p), -2.0);
  }
}

// The paper's coverage claim: for normal-ish neighbour outputs, the fitted
// [P1, P99] interval covers ~98% of the underlying population. Sweep over
// sample sizes to show n=1000 is where coverage stabilizes (Fig 3's story).
class CoverageSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoverageSweep, FittedIntervalCoversPopulation) {
  int n = GetParam();
  Rng rng(9000 + n);
  std::vector<double> sample(n);
  for (auto& x : sample) x = rng.Normal(0.0, 1.0);
  Interval iv = NormalPercentileInterval(sample, 1.0, 99.0);

  std::vector<double> population(50000);
  for (auto& x : population) x = rng.Normal(0.0, 1.0);
  double cov = CoverageFraction(population, iv.lo, iv.hi);
  // Small samples may under-cover; by n=1000 coverage must be ~0.98.
  if (n >= 1000) {
    EXPECT_GT(cov, 0.955) << "n=" << n;
  } else {
    EXPECT_GT(cov, 0.85) << "n=" << n;
  }
  EXPECT_LE(cov, 1.0);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, CoverageSweep,
                         ::testing::Values(100, 300, 1000, 3000, 10000));

}  // namespace
}  // namespace upa
