// CancelToken / CancelScope semantics and their integration with
// ThreadPool::ParallelFor chunk boundaries.
#include "common/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.h"

namespace upa {
namespace {

TEST(CancelTokenTest, FreshTokenIsLive) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_TRUE(token.status().ok());
}

TEST(CancelTokenTest, CancelTripsWithCodeAndMessage) {
  CancelToken token;
  token.Cancel(StatusCode::kCancelled, "client went away");
  EXPECT_TRUE(token.cancelled());
  Status st = token.Check();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(st.message(), "client went away");
}

TEST(CancelTokenTest, FirstCancelWins) {
  CancelToken token;
  token.Cancel(StatusCode::kDeadlineExceeded, "first");
  token.Cancel(StatusCode::kCancelled, "second");
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.status().message(), "first");
}

TEST(CancelTokenTest, DeadlineTripsOnCheckAfterExpiry) {
  CancelToken token;
  token.SetDeadlineAfterMillis(5);
  // status() does not poll: until a Check() observes the expiry the token
  // reads as live.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(token.status().ok());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, FarDeadlineStaysLive) {
  CancelToken token;
  token.SetDeadlineAfterMillis(60000);
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, NonPositiveDeadlineIgnored) {
  CancelToken token;
  token.SetDeadlineAfterMillis(0);
  token.SetDeadlineAfterMillis(-5);
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelScopeTest, NestsAndRestores) {
  EXPECT_EQ(CancelScope::Current(), nullptr);
  EXPECT_TRUE(CancelScope::CheckCurrent().ok());
  CancelToken outer, inner;
  {
    CancelScope outer_scope(&outer);
    EXPECT_EQ(CancelScope::Current(), &outer);
    {
      CancelScope inner_scope(&inner);
      EXPECT_EQ(CancelScope::Current(), &inner);
    }
    EXPECT_EQ(CancelScope::Current(), &outer);
  }
  EXPECT_EQ(CancelScope::Current(), nullptr);
}

TEST(CancelScopeTest, CheckCurrentSeesInstalledToken) {
  CancelToken token;
  token.Cancel();
  CancelScope scope(&token);
  EXPECT_EQ(CancelScope::CheckCurrent().code(), StatusCode::kCancelled);
}

TEST(CancelParallelForTest, CancelledTokenSkipsAllChunks) {
  ThreadPool pool(2);
  CancelToken token;
  token.Cancel();
  CancelScope scope(&token);
  std::atomic<size_t> processed{0};
  pool.ParallelForChunks(10000, [&](size_t begin, size_t end) {
    processed.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(processed.load(), 0u);
}

TEST(CancelParallelForTest, CancelledTokenSkipsInlinePath) {
  // n == 1 takes the inline path (no chunk tasks); the token still gates it.
  ThreadPool pool(1);
  CancelToken token;
  token.Cancel(StatusCode::kDeadlineExceeded, "too late");
  CancelScope scope(&token);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(1, [&](size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(CancelParallelForTest, WorkerThreadsSeeCallersToken) {
  ThreadPool pool(4);
  CancelToken token;
  CancelScope scope(&token);
  std::atomic<size_t> with_token{0};
  std::atomic<size_t> chunks{0};
  pool.ParallelForChunks(1000, [&](size_t, size_t) {
    chunks.fetch_add(1, std::memory_order_relaxed);
    if (CancelScope::Current() == &token) {
      with_token.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // ParallelForChunks re-installs the caller's token inside every chunk
  // task, whichever pool thread runs it.
  EXPECT_EQ(with_token.load(), chunks.load());
  EXPECT_GT(chunks.load(), 0u);
}

TEST(CancelParallelForTest, NoTokenRunsEverything) {
  ThreadPool pool(2);
  ASSERT_EQ(CancelScope::Current(), nullptr);
  std::atomic<size_t> processed{0};
  pool.ParallelForChunks(1000, [&](size_t begin, size_t end) {
    processed.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(processed.load(), 1000u);
}

}  // namespace
}  // namespace upa
