// ExactSum: correctly-rounded floating-point accumulation (Shewchuk
// expansion partials, the algorithm behind Python's math.fsum).
//
// The accumulated value is the *exact* real-number sum of everything added,
// rounded to double once at Round(). Because the exact sum of a multiset
// does not depend on the order its elements are added in, any two
// executions that add the same multiset of weights — in any order, under
// any chunking, on any pool size — produce bit-identical results. This is
// what lets the columnar engine and the row oracle agree exactly
// (tests/relational_columnar_test.cpp) and what makes every aggregate
// independent of engine partitioning (DESIGN.md §7 determinism argument).
//
// Cost: Add() is O(#partials); for sums of similar-magnitude values the
// partials list stays at 2–3 entries, so the amortized cost is a handful of
// flops per element.
#pragma once

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

namespace upa {

class ExactSum {
 public:
  ExactSum() = default;

  /// Add one value to the exact accumulator.
  void Add(double x) {
    // Maintain the invariant that partials_ is a list of non-overlapping
    // doubles in increasing magnitude whose exact sum equals the exact sum
    // of everything added so far (Shewchuk's GROW-EXPANSION via two-sum).
    size_t out = 0;
    for (size_t j = 0; j < partials_.size(); ++j) {
      double y = partials_[j];
      if (std::fabs(x) < std::fabs(y)) std::swap(x, y);
      double hi = x + y;
      double lo = y - (hi - x);
      if (lo != 0.0) partials_[out++] = lo;
      x = hi;
    }
    partials_.resize(out);
    partials_.push_back(x);
  }

  /// Fold another accumulator in. Exactness makes this order-insensitive.
  void Merge(const ExactSum& other) {
    for (double p : other.partials_) Add(p);
  }

  bool Empty() const { return partials_.empty(); }

  /// The exact sum rounded to the nearest double (round-half-to-even),
  /// exactly as math.fsum would return it. Does not modify the accumulator.
  double Round() const {
    if (partials_.empty()) return 0.0;
    // Sum from the largest partial down; because partials are
    // non-overlapping, the first inexact addition determines the result up
    // to a possible one-ulp rounding fix, applied below (CPython fsum).
    size_t n = partials_.size();
    double hi = partials_[--n];
    double lo = 0.0;
    while (n > 0) {
      double x = hi;
      double y = partials_[--n];
      hi = x + y;
      double yr = hi - x;
      lo = y - yr;
      if (lo != 0.0) break;
    }
    // Round-half-to-even correction: if the remainder `lo` is exactly half
    // an ulp and the next partial pushes it past the tie, adjust.
    if (n > 0 && ((lo < 0.0 && partials_[n - 1] < 0.0) ||
                  (lo > 0.0 && partials_[n - 1] > 0.0))) {
      double y = lo * 2.0;
      double x = hi + y;
      double yr = x - hi;
      if (y == yr) hi = x;
    }
    return hi;
  }

  void Reset() { partials_.clear(); }

 private:
  std::vector<double> partials_;
};

}  // namespace upa
