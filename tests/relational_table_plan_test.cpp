#include <gtest/gtest.h>

#include <memory>

#include "relational/plan.h"
#include "relational/table.h"

namespace upa::rel {
namespace {

Table MakeKeyTable() {
  return Table(
      "t", Schema({{"k", ValueType::kInt}, {"v", ValueType::kString}}),
      std::vector<Row>{
          {Value{int64_t{1}}, Value{std::string("a")}},
          {Value{int64_t{1}}, Value{std::string("b")}},
          {Value{int64_t{1}}, Value{std::string("a")}},
          {Value{int64_t{2}}, Value{std::string("a")}},
          {Value{int64_t{3}}, Value{std::string("c")}},
      });
}

TEST(TableTest, BasicAccessors) {
  Table t = MakeKeyTable();
  EXPECT_EQ(t.name(), "t");
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.schema().NumColumns(), 2u);
}

TEST(TableTest, MaxFrequencyPerColumn) {
  Table t = MakeKeyTable();
  EXPECT_EQ(t.MaxFrequency("k"), 3u);  // key 1 appears 3 times
  EXPECT_EQ(t.MaxFrequency("v"), 3u);  // "a" appears 3 times
}

TEST(TableTest, DistinctCount) {
  Table t = MakeKeyTable();
  EXPECT_EQ(t.DistinctCount("k"), 3u);
  EXPECT_EQ(t.DistinctCount("v"), 3u);
}

TEST(TableTest, StatsAreCachedAndStable) {
  Table t = MakeKeyTable();
  EXPECT_EQ(t.MaxFrequency("k"), t.MaxFrequency("k"));
}

TEST(PlanTest, FactoriesBuildExpectedKinds) {
  auto scan = ScanPlan("t");
  EXPECT_EQ(scan->kind, PlanKind::kScan);
  auto filter = FilterPlan(scan, Eq(Col("k"), Lit(int64_t{1})));
  EXPECT_EQ(filter->kind, PlanKind::kFilter);
  auto join = JoinPlan(scan, scan, "k", "k");
  EXPECT_EQ(join->kind, PlanKind::kJoin);
  auto count = CountPlan(filter);
  EXPECT_EQ(count->kind, PlanKind::kAggregate);
  EXPECT_EQ(count->agg, AggKind::kCount);
  auto sum = SumPlan(scan, Col("k"));
  EXPECT_EQ(sum->agg, AggKind::kSum);
}

TEST(PlanTest, AnalyzeCountsOperators) {
  auto plan = CountPlan(FilterPlan(
      JoinPlan(FilterPlan(ScanPlan("a"), Eq(Col("x"), Lit(int64_t{1}))),
               ScanPlan("b"), "x", "y"),
      Eq(Col("y"), Lit(int64_t{2}))));
  PlanStats stats = AnalyzePlan(plan);
  EXPECT_EQ(stats.num_joins, 1u);
  EXPECT_EQ(stats.num_filters, 2u);
  EXPECT_EQ(stats.num_scans, 2u);
  EXPECT_TRUE(stats.has_aggregate);
  EXPECT_EQ(stats.agg, AggKind::kCount);
  EXPECT_EQ(stats.tables.size(), 2u);
}

TEST(PlanTest, ToStringRendersStructure) {
  auto plan = CountPlan(JoinPlan(ScanPlan("a"), ScanPlan("b"), "x", "y"));
  std::string s = PlanToString(plan);
  EXPECT_EQ(s, "Count(Join(Scan(a), Scan(b), x=y))");
}

TEST(PlanTest, OwningTableResolvesThroughJoins) {
  Table users("users", Schema({{"uid", ValueType::kInt}}), {});
  Table clicks("clicks", Schema({{"cid", ValueType::kInt},
                                 {"uid_ref", ValueType::kInt}}),
               {});
  Catalog catalog{{"users", &users}, {"clicks", &clicks}};
  auto plan = JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid",
                       "uid_ref");
  EXPECT_EQ(OwningTable(plan, "uid", catalog), "users");
  EXPECT_EQ(OwningTable(plan, "uid_ref", catalog), "clicks");
  EXPECT_EQ(OwningTable(plan, "absent", catalog), "");
}

TEST(PlanTest, OwningTableAmbiguousReturnsEmpty) {
  Table a("a", Schema({{"k", ValueType::kInt}}), {});
  Table b("b", Schema({{"k", ValueType::kInt}}), {});
  Catalog catalog{{"a", &a}, {"b", &b}};
  auto plan = JoinPlan(ScanPlan("a"), ScanPlan("b"), "k", "k");
  EXPECT_EQ(OwningTable(plan, "k", catalog), "");
}

}  // namespace
}  // namespace upa::rel
