#include "dp/gaussian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"

namespace upa::dp {
namespace {

TEST(GaussianSigmaTest, MatchesClosedForm) {
  double sigma = GaussianSigma(1.0, 0.5, 1e-5);
  EXPECT_NEAR(sigma, std::sqrt(2.0 * std::log(1.25 / 1e-5)) / 0.5, 1e-12);
  // Scales linearly in sensitivity, inversely in epsilon.
  EXPECT_NEAR(GaussianSigma(2.0, 0.5, 1e-5), 2.0 * sigma, 1e-9);
  EXPECT_NEAR(GaussianSigma(1.0, 0.25, 1e-5), 2.0 * sigma, 1e-9);
}

TEST(GaussianSigmaTest, ZeroSensitivityIsZeroSigma) {
  EXPECT_DOUBLE_EQ(GaussianSigma(0.0, 0.5, 1e-5), 0.0);
}

TEST(GaussianMechanismTest, EmpiricalMomentsMatch) {
  Rng rng(1);
  std::vector<double> noisy(60000);
  for (auto& x : noisy) x = GaussianMechanism(7.0, 1.0, 0.5, 1e-5, rng);
  double sigma = GaussianSigma(1.0, 0.5, 1e-5);
  EXPECT_NEAR(Mean(noisy), 7.0, sigma * 0.02);
  EXPECT_NEAR(StdDevSample(noisy), sigma, sigma * 0.02);
}

TEST(GaussianMechanismTest, ZeroSensitivityIsNoiseless) {
  Rng rng(2);
  EXPECT_DOUBLE_EQ(GaussianMechanism(3.0, 0.0, 0.5, 1e-5, rng), 3.0);
}

TEST(GaussianMechanismTest, VectorPerturbsAllCoordinates) {
  Rng rng(3);
  std::vector<double> v{1.0, 2.0, 3.0};
  auto noisy = GaussianMechanism(v, 0.1, 0.9, 1e-6, rng);
  ASSERT_EQ(noisy.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_NE(noisy[i], v[i]);
}

TEST(CompositionTest, BasicIsLinear) {
  PrivacyParams total = BasicComposition({0.1, 1e-6}, 10);
  EXPECT_NEAR(total.epsilon, 1.0, 1e-12);
  EXPECT_NEAR(total.delta, 1e-5, 1e-18);
}

TEST(CompositionTest, AdvancedBeatsBasicForManyReleases) {
  PrivacyParams per{0.1, 0.0};
  size_t k = 100;
  PrivacyParams basic = BasicComposition(per, k);
  PrivacyParams advanced = AdvancedComposition(per, k, 1e-5);
  EXPECT_LT(advanced.epsilon, basic.epsilon);
  EXPECT_DOUBLE_EQ(advanced.delta, 1e-5);
}

TEST(CompositionTest, AdvancedMatchesFormula) {
  PrivacyParams per{0.2, 1e-7};
  PrivacyParams adv = AdvancedComposition(per, 4, 1e-6);
  double expect = 0.2 * std::sqrt(2.0 * 4.0 * std::log(1e6)) +
                  4.0 * 0.2 * (std::exp(0.2) - 1.0);
  EXPECT_NEAR(adv.epsilon, expect, 1e-12);
  EXPECT_NEAR(adv.delta, 4e-7 + 1e-6, 1e-18);
}

TEST(CompositionTest, SingleReleaseIsIdentityForBasic) {
  PrivacyParams per{0.3, 1e-8};
  PrivacyParams one = BasicComposition(per, 1);
  EXPECT_DOUBLE_EQ(one.epsilon, 0.3);
  EXPECT_DOUBLE_EQ(one.delta, 1e-8);
}

}  // namespace
}  // namespace upa::dp
