#include "mlkit/linreg.h"

#include "common/status.h"

namespace upa::ml {

core::Vec LinRegMap(const LinRegSpec& spec, const MlPoint& p) {
  const size_t d = spec.w0.size();
  UPA_CHECK_MSG(p.x.size() == d, "point dimension mismatch");
  double pred = spec.b0;
  for (size_t j = 0; j < d; ++j) pred += spec.w0[j] * p.x[j];
  double err = pred - p.y;
  core::Vec out(d + 2);
  for (size_t j = 0; j < d; ++j) out[j] = err * p.x[j];
  out[d] = err;       // bias gradient
  out[d + 1] = 1.0;   // count
  return out;
}

core::Vec LinRegPost(const LinRegSpec& spec, const core::Vec& reduced) {
  const size_t d = spec.w0.size();
  core::Vec updated(d + 1);
  if (reduced.empty()) {
    // Identity reduce value = empty dataset: no update.
    for (size_t j = 0; j < d; ++j) updated[j] = spec.w0[j];
    updated[d] = spec.b0;
    return updated;
  }
  UPA_CHECK_MSG(reduced.size() == d + 2, "reduced dimension mismatch");
  double count = reduced[d + 1];
  double scale = count > 0.0 ? spec.learning_rate / count : 0.0;
  for (size_t j = 0; j < d; ++j) updated[j] = spec.w0[j] - scale * reduced[j];
  updated[d] = spec.b0 - scale * reduced[d];
  return updated;
}

core::SimpleQuerySpec<MlPoint> MakeLinRegSpec(
    engine::ExecContext* ctx, const MlDataset& data, LinRegSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override) {
  UPA_CHECK_MSG(spec.w0.size() == data.config().dims,
                "w0 dimension must match dataset dims");
  core::SimpleQuerySpec<MlPoint> q;
  q.name = "LinearRegression";
  q.ctx = ctx;
  q.records = records_override != nullptr ? records_override : data.points();
  q.map_record = [spec](const MlPoint& p) { return LinRegMap(spec, p); };
  q.sample_domain = [&data](Rng& rng) { return data.SamplePoint(rng); };
  q.post = [spec](const core::Vec& reduced) {
    return LinRegPost(spec, reduced);
  };
  q.scalarize = [](const core::Vec& v) { return core::L2Norm(v); };
  return q;
}

core::QueryInstance MakeLinRegQuery(
    engine::ExecContext* ctx, const MlDataset& data, LinRegSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override) {
  return core::MakeSimpleQuery(
      MakeLinRegSpec(ctx, data, std::move(spec), std::move(records_override)));
}

std::vector<double> LinRegStep(const LinRegSpec& spec,
                               const std::vector<MlPoint>& points) {
  core::Vec reduced = core::VecSum::Identity();
  for (const MlPoint& p : points) {
    reduced = core::VecSum::Combine(std::move(reduced), LinRegMap(spec, p));
  }
  return LinRegPost(spec, reduced);
}

}  // namespace upa::ml
