// Idempotency-key semantics of UpaService: exactly-once replay from the
// dedup window, request-hash binding, LRU window eviction (with durable
// kExpire records), and the rebuild of the window by journal recovery.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "service/service.h"
#include "upa/simple_query.h"

namespace upa::service {
namespace {

namespace fs = std::filesystem;

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

core::QueryInstance CountQuery(size_t n, const std::string& name = "count") {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

ServiceConfig FastConfig() {
  ServiceConfig config;
  config.upa.sample_n = 100;
  return config;
}

QueryRequest KeyedRequest(const std::string& dataset, uint64_t nonce,
                          uint64_t seq, uint64_t seed = 1,
                          const std::string& name = "count") {
  QueryRequest request;
  request.tenant = "alice";
  request.dataset_id = dataset;
  request.query = CountQuery(5000, name);
  request.epsilon = 0.1;
  request.seed = seed;
  request.client_nonce = nonce;
  request.client_seq = seq;
  return request;
}

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(ServiceIdempotencyTest, RetryOfCompletedKeyReplaysWithoutCharging) {
  UpaService service(&Ctx(), FastConfig());
  auto first = service.Execute(KeyedRequest("ds", 0xabc, 1));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.1, 1e-12);

  auto retry = service.Execute(KeyedRequest("ds", 0xabc, 1));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  // Byte-identical release, and the budget did NOT move.
  EXPECT_EQ(Bits(retry.value().released), Bits(first.value().released));
  EXPECT_EQ(retry.value().records_removed, first.value().records_removed);
  EXPECT_EQ(retry.value().dataset_epoch, first.value().dataset_epoch);
  EXPECT_EQ(Bits(retry.value().seconds.total),
            Bits(first.value().seconds.total));
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.1, 1e-12);
  EXPECT_EQ(service.DedupWindowSize("ds"), 1u);
}

TEST(ServiceIdempotencyTest, KeyReuseForDifferentRequestIsRejected) {
  UpaService service(&Ctx(), FastConfig());
  ASSERT_TRUE(service.Execute(KeyedRequest("ds", 0xabc, 1)).ok());
  // Same key, different query (name feeds the request hash): client bug.
  auto reused =
      service.Execute(KeyedRequest("ds", 0xabc, 1, 2, "other-count"));
  ASSERT_FALSE(reused.ok());
  EXPECT_EQ(reused.status().code(), StatusCode::kInvalidArgument);
  // The bad reuse charged nothing.
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.1, 1e-12);
}

TEST(ServiceIdempotencyTest, UnkeyedRequestsNeverDedup) {
  UpaService service(&Ctx(), FastConfig());
  ASSERT_TRUE(service.Execute(KeyedRequest("ds", 0, 0)).ok());
  ASSERT_TRUE(service.Execute(KeyedRequest("ds", 0, 0)).ok());
  // Two fresh runs, two charges, nothing windowed.
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.2, 1e-12);
  EXPECT_EQ(service.DedupWindowSize("ds"), 0u);
}

TEST(ServiceIdempotencyTest, WindowEvictsOldestKeyWhichThenRunsFresh) {
  ServiceConfig config = FastConfig();
  config.dedup_window = 2;
  UpaService service(&Ctx(), config);
  ASSERT_TRUE(service.Execute(KeyedRequest("ds", 0xabc, 1, 1)).ok());
  ASSERT_TRUE(service.Execute(KeyedRequest("ds", 0xabc, 2, 2)).ok());
  ASSERT_TRUE(service.Execute(KeyedRequest("ds", 0xabc, 3, 3)).ok());
  EXPECT_EQ(service.DedupWindowSize("ds"), 2u);
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.3, 1e-12);

  // Key 1 aged out: its retry is no longer a replay — it runs (and
  // charges) again. The window is a bounded at-most-once guarantee.
  ASSERT_TRUE(service.Execute(KeyedRequest("ds", 0xabc, 1, 1)).ok());
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.4, 1e-12);
}

TEST(ServiceIdempotencyTest, RecoveryRebuildsWindowAndRepaysRetries) {
  char tmp[] = "/tmp/upa-idem-XXXXXX";
  ASSERT_NE(::mkdtemp(tmp), nullptr);
  const std::string dir = tmp;

  ServiceConfig config = FastConfig();
  config.journal_dir = dir;
  config.journal_fsync = false;  // process-death durability is enough here

  uint64_t first_bits = 0;
  {
    UpaService service(&Ctx(), config);
    auto first = service.Execute(KeyedRequest("ds", 0xabc, 1));
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    first_bits = Bits(first.value().released);
  }
  // "Restart": a new service over the same journal dir must answer the
  // retried key from the recovered window — same bits, no new charge.
  {
    UpaService service(&Ctx(), config);
    EXPECT_EQ(service.DedupWindowSize("ds"), 1u);
    auto retry = service.Execute(KeyedRequest("ds", 0xabc, 1));
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    EXPECT_EQ(Bits(retry.value().released), first_bits);
    EXPECT_NEAR(service.accountant().Spent("ds"), 0.1, 1e-12);
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace upa::service
