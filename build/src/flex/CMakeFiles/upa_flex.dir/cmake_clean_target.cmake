file(REMOVE_RECURSE
  "libupa_flex.a"
)
