# Empty dependencies file for mlkit_test.
# This may be replaced when dependencies are built.
