
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/relational_optimizer_test.cpp" "tests/CMakeFiles/relational_optimizer_test.dir/relational_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/relational_optimizer_test.dir/relational_optimizer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/upa_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/upa_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/upa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
