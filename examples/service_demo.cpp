// Multi-tenant service quickstart: two analysts (tenants) query two
// hospitals' datasets through one UpaService. Shows the service-layer
// guarantees on top of the core pipeline:
//   - per-dataset privacy budget with charge/refund accounting,
//   - sensitivity caching across repeat query shapes (and its
//     invalidation when the data changes, via BumpEpoch),
//   - the shared RANGE ENFORCER registry flagging a repeat-query attack
//     no matter which tenant submits the repeat,
//   - the /stats report.
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "service/service.h"
#include "upa/simple_query.h"

using namespace upa;

namespace {

core::QueryInstance PatientCount(engine::ExecContext* ctx, size_t n,
                                 const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = ctx;
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

void Show(const char* who, const Result<service::QueryResponse>& result) {
  if (!result.ok()) {
    std::printf("%-8s -> DENIED: %s\n", who, result.status().ToString().c_str());
    return;
  }
  const service::QueryResponse& r = result.value();
  std::printf("%-8s -> released %.2f (eps=%.2f%s%s)\n", who, r.released,
              r.epsilon, r.sensitivity_cache_hit ? ", cached sensitivity" : "",
              r.attack_suspected ? ", repeat-query defense engaged" : "");
}

}  // namespace

int main() {
  engine::ExecContext ctx(engine::ExecConfig{.threads = 2});
  service::ServiceConfig config;
  config.upa.sample_n = 500;
  config.budget_per_dataset = 0.5;  // five 0.1 queries per hospital
  service::UpaService service(&ctx, config);

  auto ask = [&](const char* tenant, const char* dataset, uint64_t seed) {
    service::QueryRequest request;
    request.tenant = tenant;
    request.dataset_id = dataset;
    request.query = PatientCount(&ctx, 12000, "patient-count");
    request.epsilon = 0.1;
    request.seed = seed;
    return service.Execute(request);
  };

  std::printf("== two tenants, two datasets ==\n");
  Show("alice", ask("alice", "hospital-a", 1));
  Show("bob", ask("bob", "hospital-b", 2));

  std::printf("\n== repeat query shape: cached sensitivity, and the shared\n"
              "   registry flags the repeat even from the other tenant ==\n");
  Show("bob", ask("bob", "hospital-a", 3));

  std::printf("\n== the data changed: epoch bump invalidates the cache ==\n");
  service.BumpEpoch("hospital-a");
  Show("alice", ask("alice", "hospital-a", 4));

  std::printf("\n== budget runs out (0.5 per dataset) ==\n");
  Show("alice", ask("alice", "hospital-a", 5));
  Show("alice", ask("alice", "hospital-a", 6));  // fifth 0.1 query: last one
  Show("alice", ask("alice", "hospital-a", 7));  // sixth: denied
  std::printf("hospital-a spent=%.2f remaining=%.2f\n",
              service.accountant().Spent("hospital-a"),
              service.accountant().Remaining("hospital-a"));

  std::printf("\n%s", service.StatsReport().c_str());
  return 0;
}
