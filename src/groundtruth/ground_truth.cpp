#include "groundtruth/ground_truth.h"

#include <algorithm>
#include <cmath>

namespace upa::gt {

void GroundTruth::FinalizeFrom(double fx) {
  if (neighbour_outputs.empty()) {
    min_output = max_output = fx;
    local_sensitivity = 0.0;
    return;
  }
  min_output = *std::min_element(neighbour_outputs.begin(),
                                 neighbour_outputs.end());
  max_output = *std::max_element(neighbour_outputs.begin(),
                                 neighbour_outputs.end());
  local_sensitivity = 0.0;
  for (double y : neighbour_outputs) {
    local_sensitivity = std::max(local_sensitivity, std::fabs(fx - y));
  }
}

Result<GroundTruth> ExactPlanGroundTruth(
    const rel::PlanExecutor& executor, const rel::PlanPtr& plan,
    const std::string& private_table, size_t num_records,
    const std::function<rel::Row(Rng&)>& sample_domain_row,
    size_t n_additions, uint64_t seed,
    const std::vector<rel::Row>* replace_private_rows) {
  if (replace_private_rows != nullptr) {
    UPA_CHECK_MSG(num_records == replace_private_rows->size(),
                  "num_records must match the replacement row count");
  }
  // One provenance run gives f(x) and every record's additive influence.
  rel::ExecOptions options;
  options.private_table = private_table;
  options.track_contributions = true;
  options.replace_private_rows = replace_private_rows;
  Result<rel::ExecResult> full = executor.Execute(plan, options);
  if (!full.ok()) return full.status();

  GroundTruth gt;
  gt.output = full.value().output;
  // Removal neighbours: f(x - r) = f(x) - influence(r), influence 0 for
  // records that never reached the aggregate.
  const auto& contributions = full.value().contributions;
  gt.neighbour_outputs.reserve(num_records + n_additions);
  for (size_t i = 0; i < num_records; ++i) {
    auto it = contributions.find(i);
    double influence = it == contributions.end() ? 0.0 : it->second;
    gt.neighbour_outputs.push_back(gt.output - influence);
  }

  // Addition neighbours: run the plan once with the private table replaced
  // by the synthetic rows; each row's contribution is its influence when
  // added to x (the other tables are unchanged and joins are additive).
  if (n_additions > 0) {
    Rng rng = Rng::ForStream(seed, "gt/additions/" + private_table);
    std::vector<rel::Row> synthetic;
    synthetic.reserve(n_additions);
    for (size_t i = 0; i < n_additions; ++i) {
      synthetic.push_back(sample_domain_row(rng));
    }
    rel::ExecOptions add_options;
    add_options.private_table = private_table;
    add_options.track_contributions = true;
    add_options.replace_private_rows = &synthetic;
    Result<rel::ExecResult> added = executor.Execute(plan, add_options);
    if (!added.ok()) return added.status();
    for (size_t i = 0; i < n_additions; ++i) {
      auto it = added.value().contributions.find(i);
      double influence = it == added.value().contributions.end()
                             ? 0.0
                             : it->second;
      gt.neighbour_outputs.push_back(gt.output + influence);
    }
  }
  gt.FinalizeFrom(gt.output);
  return gt;
}

GroundTruth NaiveGroundTruth(
    size_t num_records,
    const std::function<double(std::optional<size_t> excluded)>& run,
    size_t n_additions, const std::function<double(Rng&)>& run_with_addition,
    uint64_t seed) {
  GroundTruth gt;
  gt.output = run(std::nullopt);
  gt.neighbour_outputs.reserve(num_records + n_additions);
  for (size_t i = 0; i < num_records; ++i) {
    gt.neighbour_outputs.push_back(run(i));
  }
  if (n_additions > 0 && run_with_addition) {
    Rng rng = Rng::ForStream(seed, "gt/naive-additions");
    for (size_t i = 0; i < n_additions; ++i) {
      gt.neighbour_outputs.push_back(run_with_addition(rng));
    }
  }
  gt.FinalizeFrom(gt.output);
  return gt;
}

}  // namespace upa::gt
