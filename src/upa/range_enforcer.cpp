#include "upa/range_enforcer.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace upa::core {

bool RangeEnforcer::NearlyEqual(double a, double b) const {
  if (a == b) return true;
  double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tolerance_ * scale;
}

size_t RangeEnforcer::CountDifferences(const std::vector<double>& current,
                                       const std::vector<double>& prior) const {
  // Partition counts always match within one enforcer instance; a prior
  // entry of different arity (different partitioning config) trivially
  // differs everywhere.
  if (current.size() != prior.size()) return current.size();
  size_t diff = 0;
  for (size_t j = 0; j < current.size(); ++j) {
    if (!NearlyEqual(current[j], prior[j])) ++diff;
  }
  return diff;
}

EnforcerDecision RangeEnforcer::Enforce(
    std::vector<double>& partition_outputs,
    const std::function<std::vector<double>(size_t total_removed)>&
        recompute) {
  std::lock_guard lock(mu_);
  return EnforceLocked(partition_outputs, recompute);
}

EnforcerDecision RangeEnforcer::EnforceLocked(
    std::vector<double>& partition_outputs,
    const std::function<std::vector<double>(size_t total_removed)>&
        recompute) {
  EnforcerDecision decision;
  decision.prior_queries_checked = prior_.size();
  UPA_CHECK_MSG(partition_outputs.size() >= 2,
                "enforcer needs at least two partitions");

  // Algorithm 2's invariant quantifies over the whole registry: the
  // current outputs must differ from EVERY prior on >= 2 partitions at the
  // same time. Removing records to separate from prior k changes the
  // outputs, which can re-collide them with an already-checked prior
  // j < k — so after any removal the scan restarts until a full pass over
  // the registry performs no removal (or the cap is hit). Termination:
  // each extra pass implies at least one removal, and removals are
  // monotone and capped by max_removals_.
  size_t total_removed = 0;
  bool removed_this_pass = true;
  while (removed_this_pass && !decision.removal_capped) {
    removed_this_pass = false;
    ++decision.fixpoint_passes;
    for (const auto& prior : prior_) {
      size_t diff = CountDifferences(partition_outputs, prior);
      // Algorithm 2 lines 8-15: while fewer than two partitions differ,
      // the two inputs may be neighbouring — remove two records and
      // recompute.
      while (diff < 2) {
        decision.attack_suspected = true;
        if (total_removed + 2 > max_removals_) {
          decision.removal_capped = true;
          break;
        }
        total_removed += 2;
        removed_this_pass = true;
        partition_outputs = recompute(total_removed);
        diff = CountDifferences(partition_outputs, prior);
      }
      if (decision.removal_capped) break;
    }
  }
  decision.records_removed = total_removed;
  return decision;
}

void RangeEnforcer::Register(std::vector<double> partition_outputs) {
  std::lock_guard lock(mu_);
  RegisterLocked(std::move(partition_outputs));
}

void RangeEnforcer::RegisterLocked(std::vector<double> partition_outputs) {
  prior_.push_back(std::move(partition_outputs));
}

size_t RangeEnforcer::registry_size() const {
  std::lock_guard lock(mu_);
  return prior_.size();
}

void RangeEnforcer::Reset() {
  std::lock_guard lock(mu_);
  prior_.clear();
}

std::vector<std::vector<double>> RangeEnforcer::RegistrySnapshot() const {
  std::lock_guard lock(mu_);
  return prior_;
}

void RangeEnforcer::RestoreRegistry(std::vector<std::vector<double>> priors) {
  std::lock_guard lock(mu_);
  prior_ = std::move(priors);
}

}  // namespace upa::core
