// Cluster front door: routes UPA wire-protocol clients across N shard
// servers by consistent-hashing the dataset id. Start the shards first
// (examples/upa_shard or any upa_server), then:
//
//   upa_router <listen-port> <host:port> [<host:port> ...]
//
// Prints "READY <port>" once listening, then serves until SIGTERM/SIGINT.
// Clients connect to the router exactly as they would to a single server:
//
//   upa_client <router-port> "count:1000" some_dataset
//
// scripts/run_cluster.sh wires the full demo: 2 shards + router + client
// load + a mid-run shard SIGKILL to show failover and journal recovery.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/router.h"

using namespace upa;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: upa_router <listen-port> <host:port> [...]\n");
    return 2;
  }

  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  cluster::RouterConfig cfg;
  cfg.port = static_cast<uint16_t>(std::atoi(argv[1]));
  std::vector<cluster::ShardAddress> shards;
  for (int i = 2; i < argc; ++i) {
    const std::string spec = argv[i];
    const size_t colon = spec.rfind(':');
    cluster::ShardAddress addr;
    if (colon == std::string::npos) {
      addr.port = static_cast<uint16_t>(std::atoi(spec.c_str()));
    } else {
      addr.host = spec.substr(0, colon);
      addr.port = static_cast<uint16_t>(std::atoi(spec.c_str() + colon + 1));
    }
    shards.push_back(addr);
  }

  cluster::Router router(std::move(shards), cfg);
  Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("READY %u\n", router.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  router.Stop();
  std::printf("%s", router.StatsText().c_str());
  return 0;
}
