// Lightweight Status / Result error handling used across module boundaries.
//
// Convention (see DESIGN.md §5): recoverable conditions travel as
// Status/Result<T>; violated preconditions abort through UPA_CHECK with
// enough context to debug. No exceptions cross module boundaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace upa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kResourceExhausted,
  /// The caller (or the service watchdog) cancelled the operation before
  /// it released anything. Two-phase budget semantics refund the charge.
  kCancelled,
  /// The operation's deadline passed before it completed. Like kCancelled,
  /// nothing was released and the charge is refunded.
  kDeadlineExceeded,
  /// The backend (a cluster shard) is temporarily unreachable. Nothing was
  /// released; the caller should retry after a backoff.
  kUnavailable,
};

/// Human-readable name for a StatusCode (stable, for logs and tests).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Backoff hint for kResourceExhausted / kUnavailable: how long the
  /// producer suggests the caller wait before retrying. 0 = no hint.
  /// Carried across the wire in error/result frames so clients back off
  /// on advice instead of guessing.
  int64_t retry_after_ms() const { return retry_after_ms_; }
  Status& set_retry_after_ms(int64_t ms) {
    retry_after_ms_ = ms;
    return *this;
  }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  int64_t retry_after_ms_ = 0;
};

/// A value or an error. Access to the value when !ok() aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfBad();
    return *value_;
  }
  T& value() & {
    AbortIfBad();
    return *value_;
  }
  T&& value() && {
    AbortIfBad();
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  void AbortIfBad() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace detail {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace detail

}  // namespace upa

/// Abort with file/line context if `cond` is false. For preconditions and
/// invariants whose violation indicates a programming error.
#define UPA_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::upa::detail::CheckFailed(__FILE__, __LINE__, #cond, "");      \
    }                                                                 \
  } while (0)

#define UPA_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::upa::detail::CheckFailed(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                 \
  } while (0)

/// Propagate a non-OK Status from the current function.
#define UPA_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::upa::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)
