file(REMOVE_RECURSE
  "CMakeFiles/dp_accountant_test.dir/dp_accountant_test.cpp.o"
  "CMakeFiles/dp_accountant_test.dir/dp_accountant_test.cpp.o.d"
  "dp_accountant_test"
  "dp_accountant_test.pdb"
  "dp_accountant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_accountant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
