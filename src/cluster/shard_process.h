// Shard process supervision: fork/exec of shard server binaries, liveness
// watching, and automatic respawn with bounded exponential backoff.
//
// The supervisor owns the *process* half of failover; the router owns the
// *connection* half. Contract between them: a shard is always respawned at
// the same address, so the router can keep redialing a fixed host:port
// while the supervisor cycles the process behind it. Durability is the
// shard's own job — a respawned upa_shard replays its journal dir before
// accepting traffic, so the router's first successful health probe implies
// bit-identical recovered state.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace upa::cluster {

/// Binds an ephemeral TCP port, reads it back and releases it. Best-effort
/// (another process may grab the port before the caller binds it), which is
/// fine for tests/benches that retry on startup failure.
Result<uint16_t> PickFreePort();

struct ShardProcessSpec {
  /// Absolute path of the shard binary (argv[0]).
  std::string binary;
  /// Remaining argv entries.
  std::vector<std::string> args;
  /// Extra "KEY=VALUE" environment entries for the child (appended to the
  /// parent environment; used to plant UPA_FAILPOINTS, UPA_SPILL_DIR...).
  std::vector<std::string> env;
};

class ShardSupervisor {
 public:
  struct Options {
    /// Respawn delay after the first death; doubles per consecutive death.
    double backoff_initial_ms = 50.0;
    /// Upper bound for the respawn delay.
    double backoff_max_ms = 2000.0;
    /// Jitter fraction in [0, 1]: each respawn delay is scaled by a
    /// deterministic pseudo-random factor in [1-j/2, 1+j/2], so shards
    /// felled by one correlated failure (OOM sweep, machine reboot) do
    /// not replay their journals and re-register in lockstep.
    double backoff_jitter = 0.5;
    uint64_t backoff_jitter_seed = 0x73757065722d6a69ULL;
    /// A shard alive this long is considered stable: its backoff resets.
    double stable_after_ms = 5000.0;
    /// Liveness poll period of the monitor thread.
    double poll_interval_ms = 20.0;
    /// Respawn dead shards automatically. Off = launch-only supervision
    /// (the chaos tests restart explicitly to control timing).
    bool auto_restart = true;
  };

  ShardSupervisor();  // default Options
  explicit ShardSupervisor(Options options);
  ~ShardSupervisor();  // StopAll()

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// fork/execs `spec` and watches it. Returns the shard's slot index.
  Result<size_t> Launch(ShardProcessSpec spec);

  /// Current pid (-1 while dead/awaiting respawn).
  pid_t PidOf(size_t index) const;
  bool Alive(size_t index) const;
  /// Times the shard has been respawned after dying.
  uint64_t Restarts(size_t index) const;

  /// Sends `signum` (default SIGKILL) to the shard process. With
  /// auto_restart the monitor respawns it after the backoff.
  Status Kill(size_t index, int signum);

  /// Respawns a dead shard immediately (chaos tests drive restarts by
  /// hand when auto_restart is off).
  Status Respawn(size_t index);

  /// SIGTERM every shard, grace-wait, SIGKILL stragglers, reap all.
  /// Disables respawn. Idempotent.
  void StopAll();

 private:
  struct Slot {
    ShardProcessSpec spec;
    pid_t pid = -1;
    uint64_t restarts = 0;
    double backoff_ms = 0.0;
    int64_t spawned_at_ns = 0;
    int64_t respawn_at_ns = 0;  // 0 = not scheduled
  };

  void MonitorLoop();
  static Result<pid_t> Spawn(const ShardProcessSpec& spec);
  /// Jittered respawn delay; advances the jitter stream (mu_ held).
  double JitteredMs(double ms);

  Options options_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  bool stopping_ = false;
  uint64_t jitter_state_ = 0;  // mu_ held
  std::thread monitor_;
};

}  // namespace upa::cluster
