// Single-threaded I/O event loop for the network front door.
//
// One thread owns every registered fd and all per-connection state; the
// only cross-thread entry point is RunInLoop(), which enqueues a closure
// and wakes the loop through a self-pipe. This is the threading contract
// the server relies on (DESIGN.md §8): the loop does I/O and bookkeeping
// only — query work runs on the engine pool and re-enters through
// RunInLoop to write responses.
//
// The readiness backend is epoll on Linux with a portable poll(2)
// fallback, selectable at runtime (PollerKind) so the fallback path is
// testable everywhere, not just on epoll-less builds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace upa::net {

enum class PollerKind {
  kEpoll,  // Linux epoll; falls back to kPoll where unavailable
  kPoll,   // portable poll(2)
};

/// Readiness demultiplexer: the part of the loop that differs between
/// epoll and poll. Not thread-safe; owned and driven by the loop thread.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error/hangup readiness (EPOLLERR/EPOLLHUP); the fd callback decides
    /// whether that means close.
    bool error = false;
  };

  virtual ~Poller() = default;

  virtual Status Add(int fd, bool want_read, bool want_write) = 0;
  virtual Status Modify(int fd, bool want_read, bool want_write) = 0;
  virtual Status Remove(int fd) = 0;
  /// Blocks up to timeout_ms (-1 = indefinitely) and appends ready fds.
  virtual Status Wait(int timeout_ms, std::vector<Event>* out) = 0;

  /// Creates the requested backend (kEpoll silently degrades to kPoll on
  /// platforms without epoll).
  static std::unique_ptr<Poller> Create(PollerKind kind);
};

class EventLoop {
 public:
  /// Per-fd readiness callback. Runs on the loop thread. May unregister
  /// its own fd (close) — the loop tolerates callbacks mutating the
  /// registration table mid-dispatch.
  using FdCallback = std::function<void(bool readable, bool writable,
                                        bool error)>;

  explicit EventLoop(PollerKind kind = PollerKind::kEpoll);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for readiness callbacks. Loop thread only (use
  /// RunInLoop from outside).
  Status RegisterFd(int fd, bool want_read, bool want_write, FdCallback cb);
  /// Change interest set of a registered fd. Loop thread only.
  Status UpdateFd(int fd, bool want_read, bool want_write);
  /// Drop a registration. Does NOT close the fd. Loop thread only.
  void UnregisterFd(int fd);

  /// Enqueue `fn` to run on the loop thread; wakes the loop if blocked in
  /// Wait. Thread-safe. Functions enqueued after Stop() (or after the loop
  /// exits) are destroyed unrun.
  void RunInLoop(std::function<void()> fn);

  /// Periodic callback on the loop thread (connection timeout scans).
  /// interval_ms <= 0 disables. Loop thread only (or before Run()).
  void SetTickHandler(double interval_ms, std::function<void()> on_tick);

  /// Run until Stop(). Must be called from exactly one thread, which
  /// becomes the loop thread.
  void Run();

  /// Ask the loop to exit after the current iteration. Thread-safe.
  void Stop();

  bool IsInLoopThread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  void DrainWakeups();
  int NextTimeoutMs() const;

  std::unique_ptr<Poller> poller_;
  std::map<int, FdCallback> callbacks_;
  /// fds unregistered during the current dispatch round; their remaining
  /// queued events are skipped so a reused fd number can't receive the old
  /// socket's readiness. Cleared at the top of each loop iteration.
  std::vector<int> dead_this_round_;

  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::mutex pending_mu_;
  std::vector<std::function<void()>> pending_;
  bool stopped_ = false;  // guarded by pending_mu_

  double tick_interval_ms_ = 0.0;
  std::function<void()> on_tick_;
  int64_t next_tick_ns_ = 0;

  std::thread::id loop_thread_;
};

}  // namespace upa::net
