#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/stats.h"

namespace upa {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Pcg32Test, KnownStreamIsStable) {
  Pcg32 g(12345, 6789);
  std::vector<uint32_t> first(5);
  for (auto& v : first) v = g.Next();
  Pcg32 h(12345, 6789);
  for (uint32_t v : first) EXPECT_EQ(v, h.Next());
}

TEST(Pcg32Test, StreamsAreIndependent) {
  Pcg32 a(7, 1), b(7, 2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForStreamIsDeterministicPerName) {
  Rng a = Rng::ForStream(99, "alpha");
  Rng b = Rng::ForStream(99, "alpha");
  Rng c = Rng::ForStream(99, "beta");
  EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng a2 = Rng::ForStream(99, "alpha");
  EXPECT_NE(a2.NextU64(), c.NextU64());
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.UniformDouble();
  EXPECT_NEAR(Mean(xs), 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(6);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.Normal(2.0, 3.0);
  EXPECT_NEAR(Mean(xs), 2.0, 0.05);
  EXPECT_NEAR(StdDevSample(xs), 3.0, 0.05);
}

TEST(RngTest, LaplaceIsSymmetricWithRightScale) {
  Rng rng(7);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.Laplace(2.0);
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  // Var of Laplace(b) is 2 b^2 = 8 → sd ~ 2.828.
  EXPECT_NEAR(StdDevSample(xs), std::sqrt(8.0), 0.1);
}

TEST(RngTest, LaplaceZeroScaleIsZero) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Laplace(0.0), 0.0);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(9);
  std::vector<double> xs(30000);
  for (auto& x : xs) x = rng.Exponential(4.0);
  EXPECT_NEAR(Mean(xs), 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int kN = 40000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Zipf(100, 1.2);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    counts[v]++;
  }
  // Rank 1 should dominate rank 50 heavily under s=1.2.
  EXPECT_GT(counts[1], 10 * std::max(counts[50], 1));
}

TEST(RngTest, ZipfZeroExponentIsRoughlyUniform) {
  Rng rng(12);
  std::map<uint64_t, int> counts;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) counts[rng.Zipf(10, 0.0)]++;
  for (uint64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kN), 0.1, 0.02) << "k=" << k;
  }
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 100u);
  for (size_t idx : sample) EXPECT_LT(idx, 1000u);
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(14);
  auto sample = rng.SampleWithoutReplacement(50, 50);
  EXPECT_EQ(sample.size(), 50u);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each index should be chosen with probability k/n.
  Rng rng(15);
  const size_t kN = 20, kK = 5;
  std::vector<int> counts(kN, 0);
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (size_t idx : rng.SampleWithoutReplacement(kN, kK)) counts[idx]++;
  }
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(kTrials), 0.25, 0.02)
        << "index " << i;
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// Parameterized sweep: UniformU64 histograms stay near-uniform across
// different moduli.
class RngUniformSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformSweep, HistogramNearUniform) {
  uint64_t n = GetParam();
  Rng rng(100 + n);
  std::vector<int> counts(n, 0);
  const int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) counts[rng.UniformU64(n)]++;
  double expected = static_cast<double>(kTrials) / static_cast<double>(n);
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], expected, expected * 0.35) << "bucket " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngUniformSweep,
                         ::testing::Values<uint64_t>(2, 3, 5, 8, 13, 32));

}  // namespace
}  // namespace upa
