#include "upa/runner.h"

#include <algorithm>
#include <cmath>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "dp/mechanism.h"

namespace upa::core {
namespace {

/// Reduces the sampled records of each enforcer partition, optionally
/// excluding the last `removed` sample records (the enforcer's removal
/// order is deterministic: newest-index first). One task per partition on
/// `pool` (when given): each partition accumulates its own records in
/// ascending sample order, exactly the adds the sequential per-index loop
/// performs for that partition — so the result is bit-identical either way.
std::vector<Vec> SamplePartitionPartials(
    const std::vector<Vec>& sample_mapped,
    const std::vector<size_t>& sample_partition, size_t num_partitions,
    size_t removed, ThreadPool* pool) {
  std::vector<Vec> partials(num_partitions, VecSum::Identity());
  size_t keep = sample_mapped.size() > removed
                    ? sample_mapped.size() - removed
                    : 0;
  auto reduce_partition = [&](size_t j) {
    Vec acc = VecSum::Identity();
    for (size_t i = 0; i < keep; ++i) {
      if (sample_partition[i] == j) {
        acc = VecSum::Combine(std::move(acc), sample_mapped[i]);
      }
    }
    partials[j] = std::move(acc);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_partitions, reduce_partition);
  } else {
    for (size_t j = 0; j < num_partitions; ++j) reduce_partition(j);
  }
  return partials;
}

}  // namespace

Result<UpaRunResult> UpaRunner::Run(const QueryInstance& query,
                                    uint64_t seed,
                                    const SensitivityHint* hint) {
  if (query.num_records == 0) {
    return Status::InvalidArgument("query '" + query.name +
                                   "': empty input dataset");
  }
  if (!query.execute_phases) {
    return Status::InvalidArgument("query '" + query.name +
                                   "': missing execute_phases");
  }
  if (query.ctx == nullptr) {
    return Status::InvalidArgument("query '" + query.name +
                                   "': missing ExecContext");
  }
  // Percentile misconfiguration would otherwise abort deep inside the
  // quantile math; reject it as a recoverable error at the API boundary.
  if (!(config_.lo_percentile > 0.0 && config_.hi_percentile < 100.0 &&
        config_.lo_percentile < config_.hi_percentile)) {
    return Status::InvalidArgument(
        "query '" + query.name +
        "': percentiles must satisfy 0 < lo < hi < 100");
  }
  const size_t num_partitions = std::max<size_t>(2, config_.enforcer_partitions);

  UpaRunResult result;
  Stopwatch total_watch;
  engine::MetricsSnapshot metrics_before = query.ctx->metrics().Snapshot();

  // Phases 3b/4 fan out over the engine pool unless disabled. Every
  // parallel section below either writes disjoint per-index slots or
  // combines in a fixed order, so the flag changes wall-clock only, never
  // a single output bit (tested in upa_runner_test).
  ThreadPool* pool = config_.parallel_phases ? &query.ctx->pool() : nullptr;
  auto run_chunks = [&](const char* phase, size_t count,
                        const std::function<void(size_t, size_t)>& fn) {
    if (pool == nullptr) {
      if (count > 0) fn(0, count);
      return;
    }
    // Morsel-driven: workers pull fixed-grain index ranges off a shared
    // cursor, so one heavy neighbour/partition cannot stall the phase the
    // way a static chunk split could. Boundaries depend only on count, so
    // per-slot outputs are bit-identical to the sequential loop.
    ThreadPool::MorselTimings timings;
    size_t launched = pool->ParallelForMorsels(count, 0, fn, &timings);
    query.ctx->metrics().AddTasks(launched);
    query.ctx->metrics().AddPhaseTasks(phase, launched);
    query.ctx->metrics().RecordMorselRun(phase, timings.seconds);
  };

  // Cancellation points sit between phases (and, via ParallelForMorsels,
  // at every morsel boundary inside them). The last check runs before the
  // enforcer session: past that point the query registers and releases, so
  // a later cancellation must NOT abandon the run — "refund iff nothing
  // was released" depends on cancelled runs never reaching Register.
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());

  // ---- Phase 1: Partition & Sample -------------------------------------
  UPA_FAILPOINT("upa/phase_sample");
  Stopwatch phase_watch;
  const size_t n = std::min(config_.sample_n, query.num_records);
  result.sample_size = n;
  Rng sampler = Rng::ForStream(seed, "upa/sampler/" + query.name);
  std::vector<size_t> sample_indices =
      sampler.SampleWithoutReplacement(query.num_records, n);
  std::vector<size_t> sample_partition(n);
  for (size_t i = 0; i < n; ++i) {
    sample_partition[i] = sample_indices[i] % num_partitions;
  }
  result.seconds.sample = phase_watch.ElapsedSeconds();

  // ---- Phase 2 + S'-side of phase 3 (delegated to the query) -----------
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
  UPA_FAILPOINT("upa/phase_map");
  phase_watch.Reset();
  MappedBatches batches =
      query.execute_phases(sample_indices, num_partitions, n, seed);
  result.seconds.map = phase_watch.ElapsedSeconds();
  // A token that tripped mid-map leaves partially-built batches behind
  // (ParallelFor skips the remaining chunks), so the cancellation must be
  // surfaced before the shape checks get a chance to call it corruption.
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
  if (batches.sample_mapped.size() != n) {
    return Status::Internal(
        "query '" + query.name +
        "': execute_phases returned wrong sample batch size");
  }
  if (batches.sprime_partials.size() != num_partitions) {
    return Status::Internal(
        "query '" + query.name +
        "': execute_phases returned wrong partition count");
  }

  // ---- Phase 3b: Union-Preserving Reduce --------------------------------
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
  UPA_FAILPOINT("upa/phase_reduce");
  phase_watch.Reset();
  Vec r_sprime = VecSum::Identity();
  for (const Vec& partial : batches.sprime_partials) {
    r_sprime = VecSum::Combine(std::move(r_sprime), partial);
  }
  Vec r_s = TotalAggregate(batches.sample_mapped);
  Vec f_vec = VecSum::Combine(r_sprime, r_s);

  // Sampled-neighbour outputs: removals f(x - s_i), additions f(x + s̄_i),
  // derived from the per-exclusion reductions R(S \ s_i). They only feed
  // the sensitivity fit, so a hinted run skips them entirely — the
  // expensive part of a repeated query shape.
  if (hint == nullptr) {
    // Each output depends only on its own index, so the chunked evaluation
    // performs exactly the sequential loop's arithmetic per slot.
    std::vector<Vec> excl =
        ExclusionAggregate(batches.sample_mapped, config_.exclusion, pool);
    const size_t num_neighbours = n + batches.domain_mapped.size();
    result.neighbour_outputs.resize(num_neighbours);
    run_chunks("upa/neighbour_eval", num_neighbours,
               [&](size_t begin, size_t end) {
                 for (size_t i = begin; i < end; ++i) {
                   result.neighbour_outputs[i] =
                       i < n ? query.OutputOf(VecSum::Combine(r_sprime, excl[i]))
                             : query.OutputOf(VecSum::Combine(
                                   f_vec, batches.domain_mapped[i - n]));
                 }
               });
  }
  result.seconds.reduce = phase_watch.ElapsedSeconds();

  // ---- Phase 4: iDP Enforcement -----------------------------------------
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
  UPA_FAILPOINT("upa/phase_enforce");
  phase_watch.Reset();
  const double f_x = query.OutputOf(f_vec);
  if (hint != nullptr) {
    // Reuse the sensitivity/range a previous run of this query shape
    // inferred (same dataset epoch, so the inference inputs are
    // unchanged). The enforcer/clamp/noise path below is untouched —
    // soundness never depended on where the range came from.
    result.local_sensitivity = hint->local_sensitivity;
    result.out_range = hint->out_range;
    result.degenerate_sensitivity = hint->degenerate;
  } else if (config_.sensitivity_rule == SensitivityRule::kOutputRange) {
    result.out_range =
        NormalPercentileInterval(result.neighbour_outputs,
                                 config_.lo_percentile, config_.hi_percentile);
    result.local_sensitivity = result.out_range.width();
  } else {
    // Influence rules: Definition II.1 evaluated on the sampled
    // neighbours. kSampledMax is the greatest observed |f(x) - f(y)|;
    // kInfluencePercentile additionally extrapolates the tail with the
    // fitted normal's P99 (useful for smooth influence distributions,
    // overshooting for binary ones). Either way this is an *estimate* of
    // the true maximum; soundness comes from the Range Enforcer's clamp,
    // not from here.
    std::vector<double> influences(result.neighbour_outputs.size());
    run_chunks("upa/influence", influences.size(),
               [&](size_t begin, size_t end) {
                 for (size_t i = begin; i < end; ++i) {
                   influences[i] = std::fabs(result.neighbour_outputs[i] - f_x);
                 }
               });
    // max is exactly associative, so reducing the filled array on the
    // driver loses nothing and keeps the result chunking-independent.
    double max_influence = 0.0;
    for (double infl : influences) max_influence = std::max(max_influence, infl);
    result.local_sensitivity = max_influence;
    if (config_.sensitivity_rule == SensitivityRule::kInfluencePercentile) {
      NormalParams fit = FitNormalMle(influences);
      result.local_sensitivity = std::max(
          result.local_sensitivity,
          std::max(0.0, NormalQuantile(fit, config_.hi_percentile / 100.0)));
    }
    result.out_range = Interval{f_x - result.local_sensitivity,
                                f_x + result.local_sensitivity};
  }

  // Degenerate-sensitivity floor: when every sampled neighbour produced
  // the same output, local_sensitivity is 0 and the Laplace scale would be
  // 0 too — the clamped value would be released exactly, noiselessly.
  if (result.local_sensitivity < config_.min_sensitivity) {
    result.degenerate_sensitivity = true;
    result.local_sensitivity = config_.min_sensitivity;
    if (config_.sensitivity_rule == SensitivityRule::kOutputRange) {
      // Keep the rule's invariant width == local_sensitivity.
      double mid = 0.5 * (result.out_range.lo + result.out_range.hi);
      result.out_range = Interval{mid - 0.5 * config_.min_sensitivity,
                                  mid + 0.5 * config_.min_sensitivity};
    } else {
      result.out_range = Interval{f_x - config_.min_sensitivity,
                                  f_x + config_.min_sensitivity};
    }
  }

  // Per-partition outputs f(x_j) = output of R(S'_j) ⊕ R(S_j). One pool
  // task per partition (both the partial reduction and the output).
  auto partition_outputs_for = [&](size_t removed) {
    std::vector<Vec> sample_partials =
        SamplePartitionPartials(batches.sample_mapped, sample_partition,
                                num_partitions, removed, pool);
    std::vector<double> outs(num_partitions);
    run_chunks("upa/partition_outputs", num_partitions,
               [&](size_t begin, size_t end) {
                 for (size_t j = begin; j < end; ++j) {
                   outs[j] = query.OutputOf(VecSum::Combine(
                       batches.sprime_partials[j], sample_partials[j]));
                 }
               });
    return outs;
  };
  result.partition_outputs = partition_outputs_for(0);

  // Point of no return: past this check the query registers in the shared
  // registry and releases. A cancellation observed here still refunds; one
  // arriving later is ignored (the release already happened).
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());

  if (config_.enable_enforcer) {
    // The registry may be shared with other runners (the service shares
    // one per dataset): the Session lock keeps this query's Enforce and
    // Register atomic, so no concurrent release can slip a registration
    // in between and invalidate the fixpoint just computed.
    RangeEnforcer::Session session(*enforcer_);
    result.enforcer =
        session.Enforce(result.partition_outputs, partition_outputs_for);
    if (result.enforcer.records_removed > 0) {
      // x was shrunk: recompute the reduced value without the removed
      // sample records (newest-index-first removal order).
      std::vector<Vec> kept_partials = SamplePartitionPartials(
          batches.sample_mapped, sample_partition, num_partitions,
          result.enforcer.records_removed, pool);
      Vec r_s_kept = VecSum::Identity();
      for (Vec& p : kept_partials) {
        r_s_kept = VecSum::Combine(std::move(r_s_kept), p);
      }
      f_vec = VecSum::Combine(r_sprime, r_s_kept);
    }
    session.Register(result.partition_outputs);
  }

  result.reduced = f_vec;
  result.raw_output = query.OutputOf(f_vec);

  double clamped = result.out_range.Clamp(result.raw_output);
  if (config_.add_noise) {
    Rng noise = Rng::ForStream(seed, "upa/noise/" + query.name);
    result.released_output = dp::LaplaceMechanism(
        clamped, result.local_sensitivity, config_.epsilon, noise);
  } else {
    result.released_output = clamped;
  }
  result.seconds.enforce = phase_watch.ElapsedSeconds();

  result.seconds.total = total_watch.ElapsedSeconds();
  result.metrics = query.ctx->metrics().Snapshot() - metrics_before;
  return result;
}

}  // namespace upa::core
