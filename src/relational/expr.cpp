#include "relational/expr.h"

#include <utility>

#include "common/status.h"

namespace upa::rel {

std::string BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  UPA_CHECK(lhs != nullptr && rhs != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  UPA_CHECK(inner != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kNot;
  e->lhs_ = std::move(inner);
  return e;
}

ExprPtr Expr::InSet(ExprPtr lhs, std::vector<Value> set) {
  UPA_CHECK(lhs != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kInSet;
  e->lhs_ = std::move(lhs);
  e->set_ = std::move(set);
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return column_name_;
    case Kind::kLiteral:
      return rel::ToString(literal_);
    case Kind::kBinary:
      return "(" + lhs_->ToString() + " " + BinOpName(op_) + " " +
             rhs_->ToString() + ")";
    case Kind::kNot:
      return "NOT " + lhs_->ToString();
    case Kind::kInSet: {
      std::string out = lhs_->ToString() + " IN (";
      for (size_t i = 0; i < set_.size(); ++i) {
        if (i > 0) out += ", ";
        out += rel::ToString(set_[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

bool Truthy(const Value& v) {
  UPA_CHECK_MSG(IsNumeric(v), "predicate evaluated to a string");
  return AsNumeric(v) != 0.0;
}

Value EvalBinary(BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinOp::kAdd:
      return Value{AsNumeric(a) + AsNumeric(b)};
    case BinOp::kSub:
      return Value{AsNumeric(a) - AsNumeric(b)};
    case BinOp::kMul:
      return Value{AsNumeric(a) * AsNumeric(b)};
    case BinOp::kDiv: {
      double d = AsNumeric(b);
      UPA_CHECK_MSG(d != 0.0, "division by zero in expression");
      return Value{AsNumeric(a) / d};
    }
    case BinOp::kEq:
      return Value{int64_t{ValueEquals(a, b) ? 1 : 0}};
    case BinOp::kNe:
      return Value{int64_t{ValueEquals(a, b) ? 0 : 1}};
    case BinOp::kLt:
      return Value{int64_t{Compare(a, b) < 0 ? 1 : 0}};
    case BinOp::kLe:
      return Value{int64_t{Compare(a, b) <= 0 ? 1 : 0}};
    case BinOp::kGt:
      return Value{int64_t{Compare(a, b) > 0 ? 1 : 0}};
    case BinOp::kGe:
      return Value{int64_t{Compare(a, b) >= 0 ? 1 : 0}};
    case BinOp::kAnd:
      return Value{int64_t{(Truthy(a) && Truthy(b)) ? 1 : 0}};
    case BinOp::kOr:
      return Value{int64_t{(Truthy(a) || Truthy(b)) ? 1 : 0}};
  }
  UPA_CHECK_MSG(false, "unknown binary op");
  return Value{int64_t{0}};
}

}  // namespace

BoundExpr Bind(const ExprPtr& expr, const Schema& schema) {
  UPA_CHECK(expr != nullptr);
  switch (expr->kind()) {
    case Expr::Kind::kColumn: {
      size_t idx = schema.IndexOf(expr->column_name());
      return [idx](const Row& row) { return row[idx]; };
    }
    case Expr::Kind::kLiteral: {
      Value v = expr->literal();
      return [v](const Row&) { return v; };
    }
    case Expr::Kind::kBinary: {
      BoundExpr lhs = Bind(expr->lhs(), schema);
      BoundExpr rhs = Bind(expr->rhs(), schema);
      BinOp op = expr->op();
      // Short-circuit AND/OR (keeps Filter cheap on selective predicates).
      if (op == BinOp::kAnd) {
        return [lhs, rhs](const Row& row) {
          if (!Truthy(lhs(row))) return Value{int64_t{0}};
          return Value{int64_t{Truthy(rhs(row)) ? 1 : 0}};
        };
      }
      if (op == BinOp::kOr) {
        return [lhs, rhs](const Row& row) {
          if (Truthy(lhs(row))) return Value{int64_t{1}};
          return Value{int64_t{Truthy(rhs(row)) ? 1 : 0}};
        };
      }
      return [op, lhs, rhs](const Row& row) {
        return EvalBinary(op, lhs(row), rhs(row));
      };
    }
    case Expr::Kind::kNot: {
      BoundExpr inner = Bind(expr->lhs(), schema);
      return [inner](const Row& row) {
        return Value{int64_t{Truthy(inner(row)) ? 0 : 1}};
      };
    }
    case Expr::Kind::kInSet: {
      BoundExpr lhs = Bind(expr->lhs(), schema);
      std::vector<Value> set = expr->set();
      return [lhs, set](const Row& row) {
        Value v = lhs(row);
        for (const Value& s : set) {
          if (ValueEquals(v, s)) return Value{int64_t{1}};
        }
        return Value{int64_t{0}};
      };
    }
  }
  UPA_CHECK_MSG(false, "unknown expr kind");
  return {};
}

std::function<bool(const Row&)> BindPredicate(const ExprPtr& expr,
                                              const Schema& schema) {
  BoundExpr bound = Bind(expr, schema);
  return [bound](const Row& row) { return Truthy(bound(row)); };
}

std::function<double(const Row&)> BindNumeric(const ExprPtr& expr,
                                              const Schema& schema) {
  BoundExpr bound = Bind(expr, schema);
  return [bound](const Row& row) { return AsNumeric(bound(row)); };
}

bool ExprColumnsExist(const ExprPtr& expr, const Schema& schema) {
  if (expr == nullptr) return true;
  if (expr->kind() == Expr::Kind::kColumn) {
    return schema.Has(expr->column_name());
  }
  return ExprColumnsExist(expr->lhs(), schema) &&
         ExprColumnsExist(expr->rhs(), schema);
}

namespace {

uint64_t ValueFingerprint(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    return Mix64(0x1a7'0000ULL ^ static_cast<uint64_t>(*i));
  }
  if (const double* d = std::get_if<double>(&v)) {
    uint64_t bits;
    __builtin_memcpy(&bits, d, sizeof(bits));
    return Mix64(0xd0b'0000ULL ^ bits);
  }
  return Mix64(0x57e'0000ULL ^ Fnv1a(std::get<std::string>(v)));
}

}  // namespace

uint64_t ExprFingerprint(const ExprPtr& expr) {
  if (expr == nullptr) return 0x90f1'90f1ULL;
  uint64_t h = Mix64(0xe00'0000ULL + static_cast<uint64_t>(expr->kind()));
  switch (expr->kind()) {
    case Expr::Kind::kColumn:
      return HashCombine(h, Fnv1a(expr->column_name()));
    case Expr::Kind::kLiteral:
      return HashCombine(h, ValueFingerprint(expr->literal()));
    case Expr::Kind::kBinary:
      h = HashCombine(h, static_cast<uint64_t>(expr->op()));
      h = HashCombine(h, ExprFingerprint(expr->lhs()));
      return HashCombine(h, ExprFingerprint(expr->rhs()));
    case Expr::Kind::kNot:
      return HashCombine(h, ExprFingerprint(expr->lhs()));
    case Expr::Kind::kInSet: {
      h = HashCombine(h, ExprFingerprint(expr->lhs()));
      for (const Value& v : expr->set()) {
        h = HashCombine(h, ValueFingerprint(v));
      }
      return h;
    }
  }
  return h;
}

}  // namespace upa::rel
