// Exclusion aggregation: R(S \ s_i) for every i.
//
// Algorithm 1 (lines 10–11) computes, for each sampled record s_i, the
// reduction of the sample set with s_i excluded. The paper's loop does this
// naively — O(n²) combines. Because the reducer is associative and
// commutative, the same n values can be obtained from prefix and suffix
// scans in O(n) combines:
//
//   excl[i] = prefix[i-1] ⊕ suffix[i+1]
//
// Both strategies are implemented; they must agree exactly (tested), and
// bench_ablation measures the gap the scan buys.
#pragma once

#include <vector>

#include "upa/types.h"

namespace upa::core {

enum class ExclusionStrategy {
  kNaive,  // the paper's loop: recombine n-1 values for each i
  kScan,   // prefix/suffix scans: O(n) combines total
};

/// excl[i] = R over {mapped[j] : j != i}. mapped must be non-empty.
std::vector<Vec> ExclusionAggregate(const std::vector<Vec>& mapped,
                                    ExclusionStrategy strategy);

/// Total reduction R(mapped) (shared by both strategies).
Vec TotalAggregate(const std::vector<Vec>& mapped);

}  // namespace upa::core
