file(REMOVE_RECURSE
  "CMakeFiles/upa_dp.dir/accountant.cpp.o"
  "CMakeFiles/upa_dp.dir/accountant.cpp.o.d"
  "CMakeFiles/upa_dp.dir/exponential.cpp.o"
  "CMakeFiles/upa_dp.dir/exponential.cpp.o.d"
  "CMakeFiles/upa_dp.dir/gaussian.cpp.o"
  "CMakeFiles/upa_dp.dir/gaussian.cpp.o.d"
  "CMakeFiles/upa_dp.dir/mechanism.cpp.o"
  "CMakeFiles/upa_dp.dir/mechanism.cpp.o.d"
  "CMakeFiles/upa_dp.dir/sensitivity.cpp.o"
  "CMakeFiles/upa_dp.dir/sensitivity.cpp.o.d"
  "libupa_dp.a"
  "libupa_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
