// Cost-based optimizer: naive SQL-shaped plans vs Optimize() output.
//
// The baseline for every query is LiftFilters(plan) — the shape the SQL
// front-end emits, with the whole WHERE clause conjoined above the joins
// (the hand-built paper plans already push their filters, so measuring
// them directly would hide the optimizer's work). For each query this
// benchmark records
//   * wall-clock of the naive vs the optimized plan (columnar engine,
//     scan cache off, min over UPA_RUNS),
//   * the total number of rows entering join operators in each plan,
//     measured by actually executing Count() over every join input —
//     the cardinality the optimizer exists to shrink,
// and asserts that both plans agree bit-for-bit on the output.
//
// Emits BENCH_optimizer.json (override with UPA_BENCH_JSON). Knobs:
// UPA_ORDERS, UPA_RUNS, UPA_THREADS, UPA_SEED (src/bench_util/harness.h).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common/table_printer.h"
#include "relational/executor.h"
#include "relational/optimizer.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

using namespace upa;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-`runs` wall clock; returns the result of the fastest run.
double TimeQuery(const rel::PlanExecutor& exec, const rel::PlanPtr& plan,
                 size_t runs, rel::ExecResult* result) {
  rel::ExecOptions opts;
  opts.engine = rel::ExecEngine::kColumnar;
  opts.use_scan_cache = false;
  double best = 1e100;
  for (size_t r = 0; r < runs; ++r) {
    const double t0 = Now();
    Result<rel::ExecResult> res = exec.Execute(plan, opts);
    const double dt = Now() - t0;
    UPA_CHECK_MSG(res.ok(), "bench query failed: " + res.status().ToString());
    if (dt < best) {
      best = dt;
      *result = std::move(res).value();
    }
  }
  return best;
}

void CollectJoinInputs(const rel::PlanPtr& plan,
                       std::vector<rel::PlanPtr>& inputs) {
  if (plan == nullptr) return;
  if (plan->kind == rel::PlanKind::kJoin) {
    inputs.push_back(plan->left);
    inputs.push_back(plan->right);
  }
  CollectJoinInputs(plan->left, inputs);
  CollectJoinInputs(plan->right, inputs);
}

// Total rows flowing INTO join operators, measured by executing a Count
// over every join input subtree. This is ground truth, not an estimate.
size_t JoinInputRows(const rel::PlanExecutor& exec, const rel::PlanPtr& plan) {
  std::vector<rel::PlanPtr> inputs;
  CollectJoinInputs(plan, inputs);
  size_t total = 0;
  for (const rel::PlanPtr& input : inputs) {
    rel::ExecOptions opts;
    opts.engine = rel::ExecEngine::kColumnar;
    opts.use_scan_cache = false;
    Result<rel::ExecResult> r = exec.Execute(rel::CountPlan(input), opts);
    UPA_CHECK_MSG(r.ok(), "join-input count failed: " + r.status().ToString());
    total += static_cast<size_t>(r.value().output);
  }
  return total;
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Cost-based optimizer: naive vs optimized plans", env);

  tpch::TpchDataset data(tpch::TpchConfig{.num_orders = env.orders,
                                          .max_lineitems_per_order = 7,
                                          .reference_skew = 1.1,
                                          .seed = env.seed});
  rel::Catalog catalog = data.catalog();
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = env.threads, .default_partitions = 4});
  rel::PlanExecutor exec(&ctx, &catalog);

  std::string rows_json;
  bool all_identical = true;
  // ISSUE acceptance: the multi-join queries must show a real reduction in
  // join input cardinality.
  size_t tpch16_delta = 0, tpch21_delta = 0;

  TablePrinter table({"query", "naive (ms)", "optimized (ms)", "speedup",
                      "join-in rows", "join-in opt", "identical"});
  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    const rel::PlanPtr naive = rel::LiftFilters(q.plan);
    rel::OptimizerOptions opt;
    opt.private_table = q.private_table;
    const rel::PlanPtr optimized = rel::Optimize(naive, catalog, opt);

    rel::ExecResult naive_res, opt_res;
    const double naive_s = TimeQuery(exec, naive, env.runs, &naive_res);
    const double opt_s = TimeQuery(exec, optimized, env.runs, &opt_res);
    const size_t naive_rows = JoinInputRows(exec, naive);
    const size_t opt_rows = JoinInputRows(exec, optimized);

    const bool identical = std::bit_cast<uint64_t>(naive_res.output) ==
                           std::bit_cast<uint64_t>(opt_res.output);
    all_identical = all_identical && identical;
    if (q.name == "TPCH16") tpch16_delta = naive_rows - opt_rows;
    if (q.name == "TPCH21") tpch21_delta = naive_rows - opt_rows;

    const double speedup = naive_s / std::max(1e-9, opt_s);
    table.AddRow({q.name, TablePrinter::FormatDouble(naive_s * 1e3, 3),
                  TablePrinter::FormatDouble(opt_s * 1e3, 3),
                  TablePrinter::FormatDouble(speedup, 2),
                  std::to_string(naive_rows), std::to_string(opt_rows),
                  identical ? "yes" : "NO"});
    if (!rows_json.empty()) rows_json += ",\n";
    rows_json += "    {\"name\": \"" + q.name +
                 "\", \"naive_ms\": " + JsonNum(naive_s * 1e3) +
                 ", \"optimized_ms\": " + JsonNum(opt_s * 1e3) +
                 ", \"speedup\": " + JsonNum(speedup) +
                 ", \"naive_join_input_rows\": " + std::to_string(naive_rows) +
                 ", \"optimized_join_input_rows\": " +
                 std::to_string(opt_rows) +
                 ", \"output\": " + JsonNum(opt_res.output) +
                 ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  table.Print(
      "Naive (lifted) vs optimized plans (columnar, cache off, min over "
      "runs)");

  const char* path_env = std::getenv("UPA_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_optimizer.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  UPA_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::fprintf(f,
               "{\n  \"experiment\": \"optimizer\",\n"
               "  \"orders\": %zu,\n  \"runs\": %zu,\n  \"threads\": %zu,\n"
               "  \"seed\": %llu,\n  \"queries\": [\n%s\n  ]\n}\n",
               env.orders, env.runs, ctx.pool().thread_count(),
               static_cast<unsigned long long>(env.seed), rows_json.c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());

  UPA_CHECK_MSG(all_identical, "naive and optimized outputs diverged");
  UPA_CHECK_MSG(tpch16_delta > 0,
                "optimizer did not reduce TPCH16 join input rows");
  UPA_CHECK_MSG(tpch21_delta > 0,
                "optimizer did not reduce TPCH21 join input rows");
  return 0;
}
