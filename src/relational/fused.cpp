#include "relational/fused.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/exact_sum.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "relational/kernels.h"

namespace upa::rel {

namespace {

/// Rows per kernel batch — the same granularity as the interpreted path
/// (results never depend on it; it only sizes the selection scratch and
/// the morsel work units).
constexpr size_t kBatch = 4096;

// ---------------------------------------------------------------------------
// Specialized conjunct kernels
// ---------------------------------------------------------------------------
//
// The two shapes worth compiling are the ones every TPC-H filter is made
// of: numeric column vs numeric literal, and string column vs string
// literal (pre-resolved to dictionary-code thresholds). Each gets a dense
// form (first conjunct: scans a contiguous row range) and a select form
// (later conjuncts: scans the survivors of the previous one). Both write
// with a branch-free cursor advance — `out[k] = pos; k += predicate` —
// so the loops have no data-dependent branches and autovectorize.
//
// Comparison semantics are NumCmpFilter's / StringCmpFilter's, spelled
// with the identical expressions so NaN and missing-literal behaviour is
// bit-for-bit the interpreted path's (see kernels.cpp).

/// The six comparison operators, as a dense dispatch axis.
enum class CmpKind { kLt, kLe, kGt, kGe, kEq, kNe };

CmpKind CmpKindOf(BinOp op) {
  switch (op) {
    case BinOp::kLt: return CmpKind::kLt;
    case BinOp::kLe: return CmpKind::kLe;
    case BinOp::kGt: return CmpKind::kGt;
    case BinOp::kGe: return CmpKind::kGe;
    case BinOp::kEq: return CmpKind::kEq;
    default: return CmpKind::kNe;
  }
}

/// Exactly NumCmpFilter's formulas: Compare(NaN, y) == 0 in the row
/// oracle, so NaN must satisfy kLe/kGe/kEq and fail kLt/kGt/kNe.
template <CmpKind K>
inline bool NumPred(double x, double y) {
  if constexpr (K == CmpKind::kLt) return x < y;
  if constexpr (K == CmpKind::kLe) return !(x > y);
  if constexpr (K == CmpKind::kGt) return x > y;
  if constexpr (K == CmpKind::kGe) return !(x < y);
  if constexpr (K == CmpKind::kEq) return !(x < y) && !(x > y);
  if constexpr (K == CmpKind::kNe) return (x < y) || (x > y);
}

/// Pre-resolved operands of a specialized conjunct. Only the members the
/// chosen kernel template reads are populated.
struct FastArgs {
  const int64_t* ivals = nullptr;   // numeric: int column payload
  const double* dvals = nullptr;    // numeric: double column payload
  double lit = 0.0;                 // numeric: rhs literal
  const uint32_t* codes = nullptr;  // string: dictionary codes
  uint32_t lb = 0, ub = 0;          // string: [lower, upper) of the literal
};

/// Dense form: selects from the contiguous row range [begin, end) into
/// `out` (capacity >= end - begin); returns the number selected.
using DenseFn = size_t (*)(const FastArgs&, const uint32_t* ids,
                           uint32_t begin, uint32_t end, uint32_t* out);
/// Select form: filters the survivor list sel[0..n) into `out`
/// (capacity >= n); returns the number selected.
using SelectFn = size_t (*)(const FastArgs&, const uint32_t* ids,
                            const uint32_t* sel, size_t n, uint32_t* out);

template <typename T>
inline const T* NumPayload(const FastArgs& a);
template <>
inline const int64_t* NumPayload<int64_t>(const FastArgs& a) {
  return a.ivals;
}
template <>
inline const double* NumPayload<double>(const FastArgs& a) {
  return a.dvals;
}

/// `Indirect` distinguishes a bare scan (relation row == physical row; the
/// loop reads the payload contiguously) from a re-indexed one (private
/// include/exclude surgery; one gather through `ids`).
template <typename T, CmpKind K, bool Indirect>
size_t DenseNumKernel(const FastArgs& a, const uint32_t* ids, uint32_t begin,
                      uint32_t end, uint32_t* out) {
  const T* vals = NumPayload<T>(a);
  const double y = a.lit;
  size_t k = 0;
  for (uint32_t i = begin; i < end; ++i) {
    const uint32_t r = Indirect ? ids[i] : i;
    out[k] = i;
    k += NumPred<K>(static_cast<double>(vals[r]), y) ? 1 : 0;
  }
  return k;
}

template <typename T, CmpKind K, bool Indirect>
size_t SelectNumKernel(const FastArgs& a, const uint32_t* ids,
                       const uint32_t* sel, size_t n, uint32_t* out) {
  const T* vals = NumPayload<T>(a);
  const double y = a.lit;
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = sel[i];
    const uint32_t r = Indirect ? ids[p] : p;
    out[k] = p;
    k += NumPred<K>(static_cast<double>(vals[r]), y) ? 1 : 0;
  }
  return k;
}

/// StringCmpFilter's kColLit comparisons against the pre-resolved code
/// range. The dictionary is sorted and duplicate-free, so found ⇔ lb < ub
/// and an existing literal's own code is exactly lb.
template <CmpKind K>
inline bool CodePred(uint32_t c, uint32_t lb, uint32_t ub) {
  if constexpr (K == CmpKind::kLt) return c < lb;
  if constexpr (K == CmpKind::kLe) return c < ub;
  if constexpr (K == CmpKind::kGt) return c >= ub;
  if constexpr (K == CmpKind::kGe) return c >= lb;
  if constexpr (K == CmpKind::kEq) return lb < ub && c == lb;
  if constexpr (K == CmpKind::kNe) return lb >= ub || c != lb;
}

template <CmpKind K, bool Indirect>
size_t DenseStrKernel(const FastArgs& a, const uint32_t* ids, uint32_t begin,
                      uint32_t end, uint32_t* out) {
  const uint32_t* codes = a.codes;
  const uint32_t lb = a.lb, ub = a.ub;
  size_t k = 0;
  for (uint32_t i = begin; i < end; ++i) {
    const uint32_t r = Indirect ? ids[i] : i;
    out[k] = i;
    k += CodePred<K>(codes[r], lb, ub) ? 1 : 0;
  }
  return k;
}

template <CmpKind K, bool Indirect>
size_t SelectStrKernel(const FastArgs& a, const uint32_t* ids,
                       const uint32_t* sel, size_t n, uint32_t* out) {
  const uint32_t* codes = a.codes;
  const uint32_t lb = a.lb, ub = a.ub;
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = sel[i];
    const uint32_t r = Indirect ? ids[p] : p;
    out[k] = p;
    k += CodePred<K>(codes[r], lb, ub) ? 1 : 0;
  }
  return k;
}

struct KernelPair {
  DenseFn dense = nullptr;
  SelectFn select = nullptr;
};

template <typename T, bool Indirect>
KernelPair NumKernelsFor(CmpKind k) {
  switch (k) {
    case CmpKind::kLt:
      return {&DenseNumKernel<T, CmpKind::kLt, Indirect>,
              &SelectNumKernel<T, CmpKind::kLt, Indirect>};
    case CmpKind::kLe:
      return {&DenseNumKernel<T, CmpKind::kLe, Indirect>,
              &SelectNumKernel<T, CmpKind::kLe, Indirect>};
    case CmpKind::kGt:
      return {&DenseNumKernel<T, CmpKind::kGt, Indirect>,
              &SelectNumKernel<T, CmpKind::kGt, Indirect>};
    case CmpKind::kGe:
      return {&DenseNumKernel<T, CmpKind::kGe, Indirect>,
              &SelectNumKernel<T, CmpKind::kGe, Indirect>};
    case CmpKind::kEq:
      return {&DenseNumKernel<T, CmpKind::kEq, Indirect>,
              &SelectNumKernel<T, CmpKind::kEq, Indirect>};
    case CmpKind::kNe:
      return {&DenseNumKernel<T, CmpKind::kNe, Indirect>,
              &SelectNumKernel<T, CmpKind::kNe, Indirect>};
  }
  return {};
}

template <bool Indirect>
KernelPair StrKernelsFor(CmpKind k) {
  switch (k) {
    case CmpKind::kLt:
      return {&DenseStrKernel<CmpKind::kLt, Indirect>,
              &SelectStrKernel<CmpKind::kLt, Indirect>};
    case CmpKind::kLe:
      return {&DenseStrKernel<CmpKind::kLe, Indirect>,
              &SelectStrKernel<CmpKind::kLe, Indirect>};
    case CmpKind::kGt:
      return {&DenseStrKernel<CmpKind::kGt, Indirect>,
              &SelectStrKernel<CmpKind::kGt, Indirect>};
    case CmpKind::kGe:
      return {&DenseStrKernel<CmpKind::kGe, Indirect>,
              &SelectStrKernel<CmpKind::kGe, Indirect>};
    case CmpKind::kEq:
      return {&DenseStrKernel<CmpKind::kEq, Indirect>,
              &SelectStrKernel<CmpKind::kEq, Indirect>};
    case CmpKind::kNe:
      return {&DenseStrKernel<CmpKind::kNe, Indirect>,
              &SelectStrKernel<CmpKind::kNe, Indirect>};
  }
  return {};
}

bool IsComparisonOp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

BinOp MirrorCmp(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

/// One filter node of the fused chain: a compiled predicate (always — the
/// zone maps and the fallback both need it) plus, when the shape matched,
/// the specialized kernel pair. A null `dense` means the conjunct runs on
/// the interpreted FilterKernel — same code, same aborts, just with the
/// survivor list materialized.
struct FusedConjunct {
  CompiledExpr pred;
  DenseFn dense = nullptr;
  SelectFn select = nullptr;
  FastArgs args;
};

template <bool Indirect>
FusedConjunct CompileConjunct(const ExprPtr& expr, const Schema& schema,
                              const std::vector<const Column*>& columns) {
  FusedConjunct out;
  out.pred = CompileExpr(expr, schema, columns);
  const CompiledExpr& e = out.pred;
  if (e.kind != Expr::Kind::kBinary || !IsComparisonOp(e.op) || e.mixed_cmp) {
    return out;
  }
  if (e.str_cmp) {
    // CompileExpr normalizes "lit op col" to "col MirrorOp(op) lit", so
    // kColLit always has the column on the lhs and [lb, ub) resolved.
    if (e.str_form != CompiledExpr::StrForm::kColLit) return out;
    const Column* col = columns[e.lhs->col_pos];
    out.args.codes = col->codes.data();
    out.args.lb = e.lit_lb;
    out.args.ub = e.lit_ub;
    KernelPair k = StrKernelsFor<Indirect>(CmpKindOf(e.op));
    out.dense = k.dense;
    out.select = k.select;
    return out;
  }
  // Numeric column vs numeric literal, either operand order (numeric
  // comparisons are not normalized at compile time; mirror like CmpFilter
  // does at run time).
  const CompiledExpr* ce = nullptr;
  const CompiledExpr* le = nullptr;
  BinOp op = e.op;
  if (e.lhs->kind == Expr::Kind::kColumn &&
      e.rhs->kind == Expr::Kind::kLiteral) {
    ce = e.lhs.get();
    le = e.rhs.get();
  } else if (e.lhs->kind == Expr::Kind::kLiteral &&
             e.rhs->kind == Expr::Kind::kColumn) {
    ce = e.rhs.get();
    le = e.lhs.get();
    op = MirrorCmp(op);
  } else {
    return out;
  }
  const Column* col = columns[ce->col_pos];
  out.args.lit = le->num_lit;
  KernelPair k;
  if (col->type == ValueType::kInt) {
    out.args.ivals = col->ints.data();
    k = NumKernelsFor<int64_t, Indirect>(CmpKindOf(op));
  } else {
    out.args.dvals = col->doubles.data();
    k = NumKernelsFor<double, Indirect>(CmpKindOf(op));
  }
  out.dense = k.dense;
  out.select = k.select;
  return out;
}

// ---------------------------------------------------------------------------
// Weight (aggregate expression) forms
// ---------------------------------------------------------------------------

/// Reads one physical cell as double, promoting ints exactly like
/// ProjectKernel's column loop.
struct ColReader {
  const int64_t* ints = nullptr;
  const double* dbls = nullptr;

  static ColReader For(const Column* col) {
    ColReader r;
    if (col->type == ValueType::kInt) {
      r.ints = col->ints.data();
    } else {
      r.dbls = col->doubles.data();
    }
    return r;
  }
  double Get(uint32_t row) const {
    return ints != nullptr ? static_cast<double>(ints[row]) : dbls[row];
  }
};

/// The specialized weight shapes: a bare numeric column, a product of two
/// numeric columns (TPC-H Q6's l_extendedprice * l_discount), and column
/// times literal. Everything else — including any shape that can abort
/// (string operands, division) — runs the interpreted ProjectKernel on
/// the survivors, preserving abort messages and laziness.
struct WeightPlan {
  enum class Form { kNone, kCol, kMulColCol, kMulColLit, kGeneric };
  Form form = Form::kNone;
  ColReader a, b;
  double lit = 0.0;
  CompiledExpr expr;  // always compiled; the kGeneric evaluator
};

WeightPlan CompileWeight(const ExprPtr& expr, const Schema& schema,
                         const std::vector<const Column*>& columns) {
  WeightPlan out;
  out.expr = CompileExpr(expr, schema, columns);
  const CompiledExpr& e = out.expr;
  auto numeric_col = [&](const CompiledExpr& c) {
    return c.kind == Expr::Kind::kColumn && c.col_type != ValueType::kString;
  };
  auto numeric_lit = [](const CompiledExpr& c) {
    return c.kind == Expr::Kind::kLiteral && !c.is_string;
  };
  if (numeric_col(e)) {
    out.form = WeightPlan::Form::kCol;
    out.a = ColReader::For(columns[e.col_pos]);
    return out;
  }
  if (e.kind == Expr::Kind::kBinary && e.op == BinOp::kMul) {
    const CompiledExpr& l = *e.lhs;
    const CompiledExpr& r = *e.rhs;
    if (numeric_col(l) && numeric_col(r)) {
      out.form = WeightPlan::Form::kMulColCol;
      out.a = ColReader::For(columns[l.col_pos]);
      out.b = ColReader::For(columns[r.col_pos]);
      return out;
    }
    // IEEE multiplication commutes bit-for-bit, so both operand orders
    // reduce to col * lit.
    if (numeric_col(l) && numeric_lit(r)) {
      out.form = WeightPlan::Form::kMulColLit;
      out.a = ColReader::For(columns[l.col_pos]);
      out.lit = r.num_lit;
      return out;
    }
    if (numeric_lit(l) && numeric_col(r)) {
      out.form = WeightPlan::Form::kMulColLit;
      out.a = ColReader::For(columns[r.col_pos]);
      out.lit = l.num_lit;
      return out;
    }
  }
  out.form = WeightPlan::Form::kGeneric;
  return out;
}

// ---------------------------------------------------------------------------
// Accumulation
// ---------------------------------------------------------------------------

/// Per-batch aggregation state, the interpreted BatchAgg plus the survivor
/// count (batches are merged in batch order; order is irrelevant — exact
/// sums commute, min/max are associative).
struct BatchAcc {
  size_t rows = 0;
  ExactSum sum;
  std::unordered_map<size_t, ExactSum> contrib;
  std::vector<ExactSum> parts;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
};

/// Everything the per-batch loop needs, fixed per query.
struct FusedQuery {
  std::vector<FusedConjunct> chain;
  WeightPlan weight;
  bool need_expr = false;   // false: Count — no weight evaluation at all
  bool need_sum = false;    // Sum/Avg read the exact total; Min/Max don't
  bool minmax = false;      // Avg/Min/Max: track running min/max
  const uint32_t* ids = nullptr;   // relation position -> physical row
  const uint32_t* prov = nullptr;  // non-null iff the scan is the private
                                   // table: provenance == ids
  size_t parts = 0;
  bool track_contrib = false;
  BatchInput in;  // fallback kernels' column bindings
};

/// Folds survivors into `acc`. `getw(i, pos)` returns the weight of the
/// i-th survivor at relation position pos; Dense selects the contiguous
/// [begin, begin+m) enumeration (no materialized selection at all).
template <bool Dense, typename GetW>
void AccumulateInto(const FusedQuery& q, BatchAcc& acc, const uint32_t* sel,
                    uint32_t begin, size_t m, GetW getw) {
  const uint32_t* prov = q.prov;
  for (size_t i = 0; i < m; ++i) {
    const uint32_t pos = Dense ? begin + static_cast<uint32_t>(i) : sel[i];
    const double w = getw(i, pos);
    if (q.need_sum) acc.sum.Add(w);
    if (q.minmax) {
      acc.mn = w < acc.mn ? w : acc.mn;  // == std::min(mn, w)
      acc.mx = w > acc.mx ? w : acc.mx;  // == std::max(mx, w)
    }
    if (prov != nullptr) {
      if (q.track_contrib) acc.contrib[prov[pos]].Add(w);
      if (q.parts > 0) acc.parts[prov[pos] % q.parts].Add(w);
    }
  }
}

/// Scratch buffers reused across one morsel's batches.
struct Scratch {
  SelVector cur, nxt, iota;
  std::vector<double> wbuf;
};

/// Runs one batch end to end: conjunct chain with short-circuit selection,
/// then accumulation of the survivors.
void ProcessBatch(const FusedQuery& q, uint32_t begin, uint32_t end,
                  BatchAcc& acc, Scratch& s) {
  const size_t full = end - begin;
  bool dense = true;
  size_t m = full;
  for (size_t ci = 0; ci < q.chain.size(); ++ci) {
    const FusedConjunct& c = q.chain[ci];
    if (dense) {
      if (c.dense != nullptr) {
        s.cur.resize(full);
        m = c.dense(c.args, q.ids, begin, end, s.cur.data());
      } else {
        s.iota.resize(full);
        std::iota(s.iota.begin(), s.iota.end(), begin);
        s.cur.clear();
        FilterKernel(c.pred, q.in, s.iota.data(), full, s.cur);
        m = s.cur.size();
      }
      dense = false;
      continue;
    }
    // An empty survivor set makes every remaining conjunct (and the
    // aggregate) a no-op in the interpreted path too — kernels only
    // abort when at least one row is evaluated — so breaking here is
    // abort-equivalent, not just result-equivalent.
    if (m == 0) break;
    if (c.select != nullptr) {
      s.nxt.resize(m);
      const size_t k = c.select(c.args, q.ids, s.cur.data(), m, s.nxt.data());
      s.nxt.resize(k);
    } else {
      s.nxt.clear();
      FilterKernel(c.pred, q.in, s.cur.data(), m, s.nxt);
    }
    s.cur.swap(s.nxt);
    m = s.cur.size();
  }
  if (m == 0) return;
  acc.rows += m;

  const uint32_t* sel = dense ? nullptr : s.cur.data();
  if (!q.need_expr) {
    // Count: the total is the row count (an exact sum of ones rounds to
    // exactly the count, so adding the count once at merge time is
    // bit-identical); only provenance needs the per-row loop.
    if (q.prov != nullptr && (q.track_contrib || q.parts > 0)) {
      auto one = [](size_t, uint32_t) { return 1.0; };
      if (dense) {
        AccumulateInto<true>(q, acc, sel, begin, m, one);
      } else {
        AccumulateInto<false>(q, acc, sel, begin, m, one);
      }
    }
    return;
  }

  const WeightPlan& wp = q.weight;
  const uint32_t* ids = q.ids;
  switch (wp.form) {
    case WeightPlan::Form::kCol: {
      auto getw = [&](size_t, uint32_t pos) { return wp.a.Get(ids[pos]); };
      if (dense) {
        AccumulateInto<true>(q, acc, sel, begin, m, getw);
      } else {
        AccumulateInto<false>(q, acc, sel, begin, m, getw);
      }
      return;
    }
    case WeightPlan::Form::kMulColCol: {
      auto getw = [&](size_t, uint32_t pos) {
        const uint32_t r = ids[pos];
        return wp.a.Get(r) * wp.b.Get(r);
      };
      if (dense) {
        AccumulateInto<true>(q, acc, sel, begin, m, getw);
      } else {
        AccumulateInto<false>(q, acc, sel, begin, m, getw);
      }
      return;
    }
    case WeightPlan::Form::kMulColLit: {
      auto getw = [&](size_t, uint32_t pos) {
        return wp.a.Get(ids[pos]) * wp.lit;
      };
      if (dense) {
        AccumulateInto<true>(q, acc, sel, begin, m, getw);
      } else {
        AccumulateInto<false>(q, acc, sel, begin, m, getw);
      }
      return;
    }
    default: {  // kGeneric: interpreted projection over the survivors
      if (dense) {
        s.iota.resize(m);
        std::iota(s.iota.begin(), s.iota.end(), begin);
        sel = s.iota.data();
      }
      s.wbuf.resize(m);
      ProjectKernel(wp.expr, q.in, sel, m, s.wbuf.data());
      const double* w = s.wbuf.data();
      auto getw = [&](size_t i, uint32_t) { return w[i]; };
      AccumulateInto<false>(q, acc, sel, begin, m, getw);
      return;
    }
  }
}

/// MorselRun's twin (columnar.cpp keeps its copy file-local): shared-cursor
/// scheduling plus the per-phase duration histogram and task fan-out.
void FusedMorselRun(engine::ExecContext* ctx, const std::string& phase,
                    size_t n, const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::MorselTimings timings;
  const size_t morsels = ctx->pool().ParallelForMorsels(n, 0, fn, &timings);
  ctx->metrics().RecordMorselRun(phase, timings.seconds);
  ctx->metrics().AddPhaseTasks(phase, morsels);
}

}  // namespace

std::optional<FusedShape> FusableShape(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind != PlanKind::kAggregate) {
    return std::nullopt;
  }
  FusedShape shape;
  PlanPtr node = plan->left;
  while (node != nullptr && node->kind == PlanKind::kFilter) {
    shape.conjuncts.push_back(node->predicate);
    node = node->left;
  }
  if (node == nullptr || node->kind != PlanKind::kScan) return std::nullopt;
  // Collected outermost-first; the engine evaluates innermost-first.
  std::reverse(shape.conjuncts.begin(), shape.conjuncts.end());
  shape.table = node->table;
  return shape;
}

Result<ExecResult> ExecuteFused(engine::ExecContext* ctx,
                                const Catalog* catalog, const PlanPtr& plan,
                                const FusedShape& shape,
                                const ExecOptions& options) {
  const size_t engine_partitions = options.engine_partitions > 0
                                       ? options.engine_partitions
                                       : ctx->config().default_partitions;
  Result<ScanBinding> bindr = BindScanSource(ctx, catalog, shape.table,
                                             options, engine_partitions);
  if (!bindr.ok()) return bindr.status();
  const ScanBinding bind = std::move(bindr).value();
  const ColumnarTable& table = *bind.table;
  const Schema& schema = table.schema();

  // Status checks in the interpreted engine's order: filter references
  // (innermost first, while evaluating up the chain), then the aggregate's
  // provenance-compatibility and expression checks.
  for (const ExprPtr& c : shape.conjuncts) {
    if (!ExprColumnsExist(c, schema)) {
      return Status::InvalidArgument("filter references unknown column in " +
                                     c->ToString());
    }
  }
  const bool additive =
      plan->agg == AggKind::kCount || plan->agg == AggKind::kSum;
  if (!additive && (options.partitions > 0 || options.track_contributions)) {
    return Status::Unsupported(
        "provenance (partitions/contributions) requires an additive "
        "aggregate (Count or Sum)");
  }
  const bool need_expr = plan->agg != AggKind::kCount;
  if (need_expr && plan->agg_expr == nullptr) {
    return Status::InvalidArgument("aggregate missing expression");
  }
  if (need_expr && !ExprColumnsExist(plan->agg_expr, schema)) {
    return Status::InvalidArgument(
        "aggregate expression references unknown column in " +
        schema.ToString());
  }

  std::vector<const Column*> cols(schema.NumColumns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = &table.column(i);
  const bool bare = bind.row_ids == table.identity();
  const uint32_t* ids = bind.row_ids->data();
  const size_t n = bind.row_ids->size();

  FusedQuery q;
  q.ids = ids;
  q.prov = bind.is_private ? ids : nullptr;
  q.parts = options.partitions;
  q.track_contrib = options.track_contributions;
  q.need_expr = need_expr;
  q.need_sum = plan->agg == AggKind::kSum || plan->agg == AggKind::kAvg;
  q.minmax = !additive;
  q.in.resize(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) q.in[i] = {cols[i], ids};
  q.chain.reserve(shape.conjuncts.size());
  for (const ExprPtr& c : shape.conjuncts) {
    q.chain.push_back(bare ? CompileConjunct<false>(c, schema, cols)
                           : CompileConjunct<true>(c, schema, cols));
  }
  if (need_expr) q.weight = CompileWeight(plan->agg_expr, schema, cols);

  // Batch layout: fragment-aligned for bare scans (so zone-map skipping
  // drops whole batches), the uniform grid otherwise. Either way batches
  // tile [0, n) in row order — the survivor multiset per batch is a pure
  // function of the data, so fragment size never changes results.
  struct Batch {
    uint32_t begin = 0, end = 0;
    int32_t fragment = -1;
  };
  std::vector<Batch> layout;
  if (bare) {
    const auto& frags = table.fragments();
    for (size_t f = 0; f < frags.size(); ++f) {
      for (size_t b = frags[f].begin_row; b < frags[f].end_row; b += kBatch) {
        layout.push_back({static_cast<uint32_t>(b),
                          static_cast<uint32_t>(
                              std::min<size_t>(frags[f].end_row, b + kBatch)),
                          static_cast<int32_t>(f)});
      }
    }
  } else {
    for (size_t b = 0; b < n; b += kBatch) {
      layout.push_back({static_cast<uint32_t>(b),
                        static_cast<uint32_t>(std::min(n, b + kBatch)), -1});
    }
  }

  // Zone-map skipping consults the *conjoined* predicate — one decision
  // for the whole chain, where the interpreted path only skips on its
  // innermost filter — so the fused path can skip strictly more fragments.
  // FragmentCanMatch is conservative about aborts, so each skip is
  // output- and abort-equivalent to scanning the fragment.
  std::vector<uint8_t> frag_match;
  if (bare && !shape.conjuncts.empty() && !layout.empty()) {
    ExprPtr combined = shape.conjuncts[0];
    for (size_t i = 1; i < shape.conjuncts.size(); ++i) {
      combined = And(combined, shape.conjuncts[i]);
    }
    const CompiledExpr zpred = CompileExpr(combined, schema, cols);
    frag_match.resize(table.fragments().size());
    size_t skipped = 0;
    for (size_t f = 0; f < frag_match.size(); ++f) {
      frag_match[f] = FragmentCanMatch(zpred, table, f) ? 1 : 0;
      if (!frag_match[f]) ++skipped;
    }
    if (skipped > 0) {
      ctx->metrics().AddCounter("columnar/fragments_skipped", skipped);
    }
    ctx->metrics().AddCounter("columnar/fragments_scanned",
                              frag_match.size() - skipped);
  }

  const size_t nb = layout.size();
  std::vector<BatchAcc> accs(nb);
  if (q.parts > 0 && q.prov != nullptr) {
    for (BatchAcc& a : accs) a.parts.resize(q.parts);
  }
  FusedMorselRun(ctx, "columnar/fused", nb, [&](size_t b0, size_t b1) {
    Scratch s;
    for (size_t b = b0; b < b1; ++b) {
      const Batch& br = layout[b];
      if (br.fragment >= 0 && !frag_match.empty() &&
          !frag_match[br.fragment]) {
        continue;
      }
      ProcessBatch(q, br.begin, br.end, accs[b], s);
    }
  });
  ctx->metrics().AddKernelBatches(nb);
  ctx->metrics().AddKernelRows(n);
  // A cancel tripped mid-run sheds morsels; never report the partial fold.
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());

  size_t survivors = 0;
  for (const BatchAcc& a : accs) survivors += a.rows;
  ExactSum total;
  if (!need_expr) {
    total.Add(static_cast<double>(survivors));
  } else {
    for (const BatchAcc& a : accs) total.Merge(a.sum);
  }

  ExecResult result;
  result.result_rows = survivors;

  if (!additive) {
    if (survivors == 0) {
      return Status::FailedPrecondition(
          "Avg/Min/Max aggregate over an empty relation");
    }
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const BatchAcc& a : accs) {
      mn = a.mn < mn ? a.mn : mn;
      mx = a.mx > mx ? a.mx : mx;
    }
    switch (plan->agg) {
      case AggKind::kAvg:
        result.output = total.Round() / static_cast<double>(survivors);
        break;
      case AggKind::kMin:
        result.output = mn;
        break;
      default:  // kMax
        result.output = mx;
        break;
    }
    return result;
  }

  result.output = total.Round();
  if (options.track_contributions) {
    std::unordered_map<size_t, ExactSum> merged;
    for (const BatchAcc& a : accs) {
      for (const auto& [p, s] : a.contrib) merged[p].Merge(s);
    }
    result.contributions.reserve(merged.size());
    for (const auto& [p, s] : merged) result.contributions[p] = s.Round();
  }
  if (q.parts > 0) {
    // Same accounting as the interpreted path: the per-partition fold is a
    // real shuffle round in the row engine.
    ctx->metrics().AddShuffleRound();
    ctx->metrics().AddShuffleRecords(q.prov != nullptr ? survivors : 0);
    ExactSum base;
    if (q.prov == nullptr) base = total;
    std::vector<ExactSum> pid_sums(q.parts);
    if (q.prov != nullptr) {
      for (const BatchAcc& a : accs) {
        if (a.parts.empty()) continue;
        for (size_t p = 0; p < q.parts; ++p) pid_sums[p].Merge(a.parts[p]);
      }
    }
    result.partition_outputs.resize(q.parts);
    for (size_t p = 0; p < q.parts; ++p) {
      ExactSum t = base;
      t.Merge(pid_sums[p]);
      result.partition_outputs[p] = t.Round();
    }
  }
  return result;
}

}  // namespace upa::rel
