// Binary wire protocol for the UPA network front door.
//
// Everything that crosses the socket is a FRAME:
//
//   offset  size  field
//   0       4     magic      0x55504157 ("UPAW", little-endian u32)
//   4       1     version    kWireVersion (1)
//   5       1     type       FrameType
//   6       2     reserved   must be 0
//   8       4     payload_len  (little-endian; capped by the receiver)
//   12      8     checksum   FNV-1a 64 over header[0..12) ++ payload
//   20      len   payload
//
// The checksum covers the header prefix as well as the payload, so ANY
// single-byte corruption of a frame — magic, version, type, length,
// payload, or the checksum itself — is detected: the frame either fails a
// field validation or fails the checksum. This is the property the wire
// torture suite exercises exhaustively (tests/net_wire_test.cpp).
//
// Payload scalars are little-endian; doubles travel as their raw IEEE-754
// bits (the same convention as the service journal — releases must be
// bit-identical across the wire). Strings are u32 length + bytes.
//
// Request/response payloads:
//   kQueryRequest   client_tag, tenant, dataset_id, epsilon, seed,
//                   fingerprint, deadline_ms, sql, client_nonce,
//                   client_seq (idempotency key; 0 = unkeyed)
//   kQueryResponse  client_tag, status code + message, released value and
//                   the full decision metadata of service::QueryResponse,
//                   retry_after_ms backoff hint
//   kStatsRequest   (empty)
//   kStatsResponse  client_tag(0), text
//   kError          status code + message; the server closes the
//                   connection after sending one (framing can no longer be
//                   trusted once a frame was rejected).
//
// `client_tag` is chosen by the client and echoed verbatim: responses may
// complete out of submission order (two datasets pipelined on one
// connection), so the tag — not arrival order — matches them up.
//
// Decoding never trusts a length field: every read is bounds-checked
// against the remaining bytes and trailing garbage is rejected, so a
// hostile frame can make a decode FAIL but never over-read (ASan-verified
// by the torture suite).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "service/service.h"

namespace upa::net {

inline constexpr uint32_t kWireMagic = 0x55504157u;  // "UPAW"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
/// Default receiver-side cap on payload_len. A frame claiming more is
/// rejected before any buffering commitment is made.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kError = 5,
};

/// A decoded frame: type + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// One analyst query as it travels client → server.
struct WireQuery {
  uint64_t client_tag = 0;
  std::string tenant;
  std::string dataset_id;
  double epsilon = 0.1;
  uint64_t seed = 0;
  uint64_t fingerprint = 0;
  int64_t deadline_ms = 0;
  std::string sql;
  /// Idempotency key. (client_nonce, client_seq) with nonce != 0 names
  /// this request uniquely across retries: a re-submission with the same
  /// key replays the journaled response instead of re-running (and never
  /// re-charges budget). nonce == 0 means "no key" — every submission is
  /// a fresh query. net::Client stamps a key automatically.
  uint64_t client_nonce = 0;
  uint64_t client_seq = 0;
};

/// The full release outcome as it travels server → client: the Status plus
/// (when ok) every field of service::QueryResponse.
struct WireResult {
  uint64_t client_tag = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  service::QueryResponse response;
  /// Backoff hint on kResourceExhausted / kUnavailable (0 = none).
  int64_t retry_after_ms = 0;

  bool ok() const { return code == StatusCode::kOk; }
  Status status() const {
    if (ok()) return Status::Ok();
    Status st(code, message);
    st.set_retry_after_ms(retry_after_ms);
    return st;
  }
};

/// FNV-1a 64 over arbitrary bytes (seed continuation form, so the header
/// prefix and payload can be folded in one pass).
uint64_t WireChecksum(std::string_view bytes,
                      uint64_t seed = 0xcbf29ce484222325ULL);

/// Bounds-checked little-endian payload reader. Every getter fails with
/// kInvalidArgument instead of reading past the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetDouble(double* out);  // raw IEEE-754 bits
  Status GetString(std::string* out);
  /// Rejects trailing bytes — a valid payload is consumed exactly.
  Status ExpectEnd() const;

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Little-endian payload writer (appends to an internal buffer).
class PayloadWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);  // raw IEEE-754 bits
  void PutString(std::string_view s);

  std::string Take() { return std::move(out_); }
  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

/// Wrap a payload in a checksummed frame, ready to write to a socket.
std::string EncodeFrame(FrameType type, std::string_view payload);

std::string EncodeQueryFrame(const WireQuery& query);
std::string EncodeResultFrame(const WireResult& result);
std::string EncodeStatsRequestFrame();
std::string EncodeStatsResponseFrame(std::string_view text);
std::string EncodeErrorFrame(const Status& status);

Status DecodeQueryPayload(std::string_view payload, WireQuery* out);
Status DecodeResultPayload(std::string_view payload, WireResult* out);
Status DecodeStatsResponsePayload(std::string_view payload, std::string* out);
Status DecodeErrorPayload(std::string_view payload, Status* out);

/// Incremental frame extraction from a byte stream. Feed whatever the
/// socket produced; Next() hands back complete, checksum-verified frames.
/// Any framing violation (bad magic/version/reserved, oversize length,
/// checksum mismatch, unknown type) is terminal for the stream: the
/// assembler latches the error and the connection must be closed — there
/// is no way to resynchronise a corrupt length-prefixed stream.
class FrameAssembler {
 public:
  enum class Outcome { kNeedMore, kFrame, kError };

  explicit FrameAssembler(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(std::string_view bytes);

  /// kFrame: `*frame` holds the next complete frame. kNeedMore: the buffer
  /// holds only a partial frame. kError: the stream is corrupt; `*error`
  /// explains (and every later call returns the same error).
  Outcome Next(Frame* frame, Status* error);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already handed out as frames
  Status latched_error_ = Status::Ok();
  bool poisoned_ = false;
};

}  // namespace upa::net
