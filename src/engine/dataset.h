// Dataset<T>: the engine's RDD.
//
// A Dataset is an immutable, partitioned, in-memory collection. Narrow
// transformations (Map/Filter/FlatMap) run one task per partition on the
// context's thread pool; wide operations (reduce-by-key, join — see
// shuffle.h) exchange records between partitions through an explicit
// shuffle stage, like Spark's stage boundary.
//
// All user-supplied operators are expected to be pure; the commutativity /
// associativity contract that UPA relies on (paper §II-C) is verified for
// shipped reducers by property tests in tests/.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/context.h"

namespace upa::engine {

template <typename T>
class Dataset {
 public:
  using value_type = T;
  using Partition = std::vector<T>;

  Dataset(ExecContext* ctx, std::vector<Partition> partitions)
      : ctx_(ctx), partitions_(std::make_shared<const std::vector<Partition>>(
                       std::move(partitions))) {
    UPA_CHECK_MSG(ctx_ != nullptr, "Dataset requires an ExecContext");
  }

  /// Zero-copy construction over already-materialized partitions (e.g. a
  /// cached scan). Datasets never mutate their partitions.
  Dataset(ExecContext* ctx,
          std::shared_ptr<const std::vector<Partition>> partitions)
      : ctx_(ctx), partitions_(std::move(partitions)) {
    UPA_CHECK_MSG(ctx_ != nullptr, "Dataset requires an ExecContext");
    UPA_CHECK_MSG(partitions_ != nullptr, "Dataset requires partitions");
  }

  /// Distribute `values` round-robin-by-block into `num_partitions` parts
  /// (0 → context default). Preserves relative order within partitions.
  static Dataset FromVector(ExecContext* ctx, std::vector<T> values,
                            size_t num_partitions = 0) {
    UPA_CHECK(ctx != nullptr);
    if (num_partitions == 0) num_partitions = ctx->config().default_partitions;
    num_partitions = std::max<size_t>(1, num_partitions);
    std::vector<Partition> parts(num_partitions);
    size_t n = values.size();
    size_t per = (n + num_partitions - 1) / num_partitions;
    for (size_t p = 0; p < num_partitions; ++p) {
      size_t begin = p * per;
      size_t end = std::min(n, begin + per);
      if (begin < end) {
        parts[p].assign(std::make_move_iterator(values.begin() + begin),
                        std::make_move_iterator(values.begin() + end));
      }
    }
    return Dataset(ctx, std::move(parts));
  }

  ExecContext* context() const { return ctx_; }
  size_t NumPartitions() const { return partitions_->size(); }
  const Partition& partition(size_t i) const { return (*partitions_)[i]; }

  size_t Count() const {
    size_t total = 0;
    for (const auto& p : *partitions_) total += p.size();
    return total;
  }

  /// Narrow transformation: apply fn to every element.
  template <typename Fn, typename U = std::invoke_result_t<Fn, const T&>>
  Dataset<U> Map(Fn fn) const {
    std::vector<std::vector<U>> out(NumPartitions());
    RunPerPartition([&](size_t p) {
      const Partition& in = (*partitions_)[p];
      out[p].reserve(in.size());
      for (const T& v : in) out[p].push_back(fn(v));
      ctx_->metrics().AddRecords(in.size());
    });
    return Dataset<U>(ctx_, std::move(out));
  }

  /// Narrow transformation: keep elements where pred(v) is true.
  template <typename Pred>
  Dataset<T> Filter(Pred pred) const {
    std::vector<Partition> out(NumPartitions());
    RunPerPartition([&](size_t p) {
      const Partition& in = (*partitions_)[p];
      for (const T& v : in) {
        if (pred(v)) out[p].push_back(v);
      }
      ctx_->metrics().AddRecords(in.size());
    });
    return Dataset<T>(ctx_, std::move(out));
  }

  /// Narrow transformation: fn returns a vector of outputs per element.
  template <typename Fn,
            typename Vec = std::invoke_result_t<Fn, const T&>,
            typename U = typename Vec::value_type>
  Dataset<U> FlatMap(Fn fn) const {
    std::vector<std::vector<U>> out(NumPartitions());
    RunPerPartition([&](size_t p) {
      const Partition& in = (*partitions_)[p];
      for (const T& v : in) {
        Vec produced = fn(v);
        for (auto& u : produced) out[p].push_back(std::move(u));
      }
      ctx_->metrics().AddRecords(in.size());
    });
    return Dataset<U>(ctx_, std::move(out));
  }

  /// Action: reduce all elements with a commutative-associative combine.
  /// `identity` must be a two-sided identity of `combine` (empty partitions
  /// contribute it to the final combine). Returns `identity` for an empty
  /// dataset. Partitions reduce in parallel, then partials combine in
  /// partition order (deterministic).
  template <typename Combine>
  T Reduce(Combine combine, T identity) const {
    std::vector<T> partials = ReducePerPartition(combine, identity);
    T acc = identity;
    for (T& partial : partials) acc = combine(std::move(acc), partial);
    return acc;
  }

  /// Per-partition partial reductions (the "ReduceByPar" of Algorithm 1):
  /// one partial per partition, empty partitions yield `identity`.
  template <typename Combine>
  std::vector<T> ReducePerPartition(Combine combine, T identity) const {
    std::vector<T> partials(NumPartitions(), identity);
    RunPerPartition([&](size_t p) {
      const Partition& in = (*partitions_)[p];
      T acc = identity;
      for (const T& v : in) acc = combine(std::move(acc), v);
      partials[p] = std::move(acc);
      ctx_->metrics().AddRecords(in.size());
    });
    return partials;
  }

  /// Action: materialize all elements in partition order.
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(Count());
    for (const auto& p : *partitions_) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  /// Uniform sample of k distinct elements (by global index).
  std::vector<T> Sample(Rng& rng, size_t k) const {
    std::vector<T> all = Collect();
    UPA_CHECK_MSG(k <= all.size(), "sample larger than dataset");
    std::vector<size_t> idx = rng.SampleWithoutReplacement(all.size(), k);
    std::vector<T> out;
    out.reserve(k);
    for (size_t i : idx) out.push_back(all[i]);
    return out;
  }

  /// Rebalance into `num_partitions` parts (narrow re-slice, no hash).
  Dataset<T> Repartition(size_t num_partitions) const {
    return FromVector(ctx_, Collect(), num_partitions);
  }

 private:
  template <typename Fn>
  void RunPerPartition(const Fn& fn) const {
    ctx_->metrics().AddTasks(NumPartitions());
    ctx_->pool().ParallelFor(NumPartitions(), fn);
  }

  ExecContext* ctx_;
  std::shared_ptr<const std::vector<Partition>> partitions_;
};

}  // namespace upa::engine
