// Hashing helpers: combination and 64-bit mixing for shuffle partitioning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace upa {

/// boost-style hash combine.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Finalizing 64-bit mixer (MurmurHash3 fmix64). Used by the shuffle
/// partitioner so that sequential keys spread across partitions.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over bytes.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace upa
