// Durable enforcer/budget journal (per dataset).
//
// Every privacy-critical mutation the service performs — budget charges,
// releases (which register the query's partition outputs in the Algorithm 2
// enforcer registry), refunds, and data-epoch bumps — is appended to a
// per-dataset journal file before the response is acknowledged to the
// client. A restarted service replays the journal and reconstructs the
// enforcer registry, the privacy accountant's ledger and the epoch
// bit-identically: doubles travel as raw IEEE-754 bits, and the registry
// preserves registration order (Enforce iterates priors in order).
//
// Record wire format (little-endian):
//
//   [u32 payload_len][u64 fnv1a(payload)][payload]
//   payload := u8 type, u64 qid, u64 epsilon_bits, u64 epoch,
//              u32 vec_len, vec_len × u64 double_bits,
//              u32 id_len, id_len bytes,       (dataset id; kOpen only)
//              u64 nonce, u64 key_seq, u64 request_hash,
//              u32 blob_len, blob_len bytes    (idempotency key + serialized
//                                               response; kRelease/kExpire)
//
// A torn tail (partial header, impossible length, checksum mismatch —
// the process died mid-append) ends replay at the last intact record;
// everything before it is trusted, everything after discarded. A charge
// with no matching release/refund at the end of replay is a query that
// died in flight: nothing was acknowledged to the analyst (the service
// appends the release record BEFORE resolving the response), so recovery
// refunds it — exactly the two-phase in-memory semantics, made durable.
//
// The snapshot file (atomic write-then-rename) compacts replay: it stores
// the full recovered state plus `covered_bytes`, the journal offset it
// absorbed; recovery loads the snapshot and replays only records past that
// offset. The journal itself is append-only and never rewritten, so a
// crash at any point leaves either the old or the new snapshot — both
// consistent with the same journal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace upa::service {

struct JournalRecord {
  enum class Type : uint8_t {
    kOpen = 1,       // file header: names the dataset
    kCharge = 2,     // qid charged `epsilon` against the dataset's budget
    kRelease = 3,    // qid released; partition_outputs joined the registry
    kRefund = 4,     // qid's charge was returned (failure/cancel/deadline)
    kEpochBump = 5,  // dataset data changed; `epoch` is the new value
    kExpire = 6,     // idempotency key (nonce, key_seq) left the dedup window
  };

  Type type = Type::kCharge;
  uint64_t qid = 0;
  double epsilon = 0.0;
  uint64_t epoch = 0;
  std::vector<double> partition_outputs;  // kRelease only
  std::string dataset_id;                 // kOpen only
  /// Idempotency key of the request that produced this release (0 = the
  /// request carried no key). On kRelease the full serialized response
  /// rides along in `response_blob` so a retried key can be answered
  /// byte-identically after a crash; kExpire names the key whose entry
  /// aged out of the dedup window.
  uint64_t nonce = 0;
  uint64_t key_seq = 0;
  uint64_t request_hash = 0;   // binds the key to the request it first named
  std::string response_blob;   // kRelease only; opaque to the journal
};

/// One completed idempotency key and the exact response it was answered
/// with, as journaled by the kRelease record.
struct DedupDurableEntry {
  uint64_t nonce = 0;
  uint64_t seq = 0;
  uint64_t request_hash = 0;
  std::string response_blob;
};

/// One dataset's durable state, as reconstructed by recovery.
struct DatasetDurableState {
  std::string dataset_id;
  uint64_t epoch = 0;
  double charged_total = 0.0;
  double refunded_total = 0.0;
  /// Registered prior-query outputs in registration order.
  std::vector<std::vector<double>> registry;
  /// Charges that were still in flight when the journal ended (crash):
  /// recovery refunds them (qid → epsilon). Kept for observability.
  std::map<uint64_t, double> recovered_refunds;
  /// Completed idempotency keys in completion order (oldest first): every
  /// keyed kRelease minus the keys a later kExpire retired. The service
  /// rebuilds its dedup window from this so replay survives process death.
  std::vector<DedupDurableEntry> dedup;
};

/// Append-side handle for one dataset's journal file. Thread-safe: appends
/// from the run path and epoch bumps may interleave.
class Journal {
 public:
  /// Opens (creating if needed) `<dir>/<FileStem(dataset_id)>.journal` for
  /// appending; a fresh file gets a kOpen header record (and, with `fsync`,
  /// the directory entry is synced so the new file survives power loss).
  /// `fsync = false` trades crash-durability for speed (bench off-path).
  static Result<std::unique_ptr<Journal>> Open(const std::string& dir,
                                               const std::string& dataset_id,
                                               bool fsync = true);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Serialize, checksum, append, flush and (unless fsync was disabled at
  /// Open) fdatasync one record — Ok means the record survives power loss,
  /// not just process death. Failpoint sites "journal/before_append" /
  /// "journal/before_sync" / "journal/after_append" bracket the write and
  /// the sync (abort there = crash with the record absent / written but
  /// possibly unsynced / durable).
  Status Append(const JournalRecord& record);

  const std::string& path() const { return path_; }

  /// Deterministic filesystem stem for a dataset id: sanitized prefix plus
  /// an FNV-1a suffix so distinct ids never collide after sanitizing.
  static std::string FileStem(const std::string& dataset_id);

  /// Reads every intact record; stops (without error) at a torn tail.
  /// `torn_tail` reports whether trailing bytes were discarded and
  /// `intact_bytes` the offset of the last intact record's end — recovery
  /// truncates the file there, because frames appended after a fragment
  /// would be unreachable (readers stop at the first bad frame).
  /// `frame_ends`, when non-null, receives each record's end offset in the
  /// file — the on-disk size authority recovery walks (legacy records are
  /// shorter than a re-encode of the same record would be).
  static Result<std::vector<JournalRecord>> ReadAll(
      const std::string& path, bool* torn_tail = nullptr,
      uint64_t* intact_bytes = nullptr,
      std::vector<uint64_t>* frame_ends = nullptr);

 private:
  Journal(std::string path, std::FILE* file, bool fsync)
      : path_(std::move(path)), file_(file), fsync_(fsync) {}

  std::string path_;
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool fsync_ = true;
};

/// Writes `<dir>/<stem>.snapshot` atomically (tmp + rename). With `fsync`
/// the tmp file is synced before the rename and the directory after it, so
/// a power cut leaves either the old snapshot or the complete new one —
/// never a renamed-but-empty file. `covered_bytes` is the journal size the
/// state absorbs.
Status WriteSnapshot(const std::string& dir, const DatasetDurableState& state,
                     uint64_t covered_bytes, bool fsync = true);

/// Loads a snapshot; NOT_FOUND when absent, INTERNAL on corruption.
/// `covered_bytes` receives the journal offset the snapshot covers.
Result<DatasetDurableState> ReadSnapshot(const std::string& path,
                                         uint64_t* covered_bytes);

/// Full recovery for one dataset: snapshot (if any) + journal replay past
/// `covered_bytes`, dangling charges refunded. `compact` then writes a
/// fresh snapshot absorbing the whole journal (synced unless `fsync` is
/// off).
Result<DatasetDurableState> RecoverDataset(const std::string& dir,
                                           const std::string& dataset_id,
                                           bool compact, bool fsync = true);

/// Scans `dir` for journals and recovers every dataset found.
Result<std::vector<DatasetDurableState>> RecoverAll(const std::string& dir,
                                                    bool compact,
                                                    bool fsync = true);

}  // namespace upa::service
