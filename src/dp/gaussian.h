// Gaussian mechanism and (ε, δ) composition helpers.
//
// UPA itself releases with pure-ε Laplace noise; the Gaussian mechanism is
// provided as the standard alternative for vector-valued releases (ML
// model updates) where L2 sensitivity composes better, together with the
// basic and advanced sequential-composition bounds an operator needs to
// reason about multi-release pipelines (e.g. examples/private_ml's
// gradient steps).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace upa::dp {

/// Classic analytic Gaussian mechanism noise scale:
/// σ = sensitivity · sqrt(2 ln(1.25/δ)) / ε, valid for ε ∈ (0, 1).
double GaussianSigma(double l2_sensitivity, double epsilon, double delta);

/// value + N(0, σ²) with σ from GaussianSigma.
double GaussianMechanism(double value, double l2_sensitivity, double epsilon,
                         double delta, Rng& rng);

/// Per-coordinate Gaussian noise; `l2_sensitivity` is the L2 sensitivity
/// of the whole vector.
std::vector<double> GaussianMechanism(const std::vector<double>& values,
                                      double l2_sensitivity, double epsilon,
                                      double delta, Rng& rng);

/// Basic sequential composition: k releases of (ε, δ) are (kε, kδ).
struct PrivacyParams {
  double epsilon = 0.0;
  double delta = 0.0;
};

PrivacyParams BasicComposition(PrivacyParams per_release, size_t k);

/// Advanced composition (Dwork–Rothblum–Vadhan): k releases of (ε, δ) are
/// (ε', kδ + δ') with ε' = ε·sqrt(2k ln(1/δ')) + kε(e^ε − 1).
PrivacyParams AdvancedComposition(PrivacyParams per_release, size_t k,
                                  double delta_prime);

}  // namespace upa::dp
