// Deterministic fault injection (failpoints).
//
// A failpoint is a named site in the code ("service/run",
// "journal/after_append", ...) where a test or an operator can inject a
// fault without recompiling: an error Status returned from the enclosing
// function, a fixed delay, or a process abort (for crash-recovery tests).
// Sites fire deterministically — every Nth hit, or with a seeded
// per-hit probability derived from (seed, hit index) — so a chaos schedule
// replays bit-identically from its seed.
//
// Activation is per-site, via the API (Failpoints::Activate) or the
// UPA_FAILPOINTS environment variable:
//
//   UPA_FAILPOINTS="upa/phase_reduce=error(internal):every(3);\
//                   journal/after_append=abort:every(5);\
//                   threadpool/task=delay(2):prob(0.25,42)"
//
// Spec grammar (whitespace-free):  <action>[:<trigger>]
//   action  := error(<code>[,<message>]) | delay(<millis>) | abort | kill
//   trigger := every(<n>)        fire on hits n, 2n, 3n, ...   (default 1)
//            | prob(<p>[,<seed>]) fire iff splitmix(seed, hit) < p
//   <code>  := a StatusCodeName, case-insensitive ("internal",
//              "cancelled", "resource_exhausted", ...)
//
// Cost when nothing is active: UPA_FAILPOINT compiles to one relaxed
// atomic load and a predictable branch (measured in bench_engine_micro);
// compiling with -DUPA_FAILPOINTS_ENABLED=0 removes even that.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

#ifndef UPA_FAILPOINTS_ENABLED
#define UPA_FAILPOINTS_ENABLED 1
#endif

namespace upa {

/// Singleton registry of failpoint sites. All methods are thread-safe.
class Failpoints {
 public:
  enum class Action { kError, kDelay, kAbort, kKill };
  enum class Trigger { kEveryN, kProbability };

  struct Spec {
    Action action = Action::kError;
    StatusCode error_code = StatusCode::kInternal;
    std::string error_message;  // empty → "injected fault at '<site>'"
    double delay_millis = 0.0;
    Trigger trigger = Trigger::kEveryN;
    uint64_t every_n = 1;
    double probability = 1.0;
    uint64_t seed = 0;
  };

  struct SiteStats {
    uint64_t hits = 0;   // times an activated site was evaluated
    uint64_t fires = 0;  // times it actually injected its fault
  };

  static Failpoints& Instance();

  /// Activate `site` with a parsed `spec` string (grammar in the file
  /// comment). Replaces any existing activation; resets hit counts.
  Status Activate(const std::string& site, const std::string& spec);
  void Activate(const std::string& site, const Spec& spec);
  void Deactivate(const std::string& site);
  void DeactivateAll();

  /// Parse UPA_FAILPOINTS (or `env_value` when non-null, for tests) as a
  /// ';'-separated list of site=spec activations.
  Status LoadFromEnv(const char* env_value = nullptr);

  /// Hit/fire counts for an activated site ({0,0} when never activated).
  SiteStats StatsFor(const std::string& site) const;

  /// True when at least one site is active — the macro's fast-path guard.
  bool AnyActive() const {
    return active_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path behind UPA_FAILPOINT: evaluates `site` if active.
  /// Returns the injected error (action=error), sleeps then returns OK
  /// (action=delay), aborts the process (action=abort), or returns OK when
  /// the site is inactive / its trigger does not fire on this hit.
  Status Evaluate(const char* site);

  /// Parse a spec string into a Spec without activating anything.
  static Status ParseSpec(const std::string& text, Spec* out);

 private:
  struct Site {
    Spec spec;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
  };

  Failpoints() = default;

  mutable std::mutex mu_;
  // shared_ptr: Evaluate uses a site's counters after dropping the lock,
  // so a concurrent Deactivate must not free it out from under the hit.
  std::map<std::string, std::shared_ptr<Site>> sites_;
  std::atomic<int> active_count_{0};
};

}  // namespace upa

/// Fault-injection site in a Status/Result-returning function: when the
/// site is active and fires with an error action, the enclosing function
/// returns the injected Status.
#if UPA_FAILPOINTS_ENABLED
#define UPA_FAILPOINT(site)                                          \
  do {                                                               \
    if (::upa::Failpoints::Instance().AnyActive()) {                 \
      ::upa::Status _fp_st = ::upa::Failpoints::Instance().Evaluate(site); \
      if (!_fp_st.ok()) return _fp_st;                               \
    }                                                                \
  } while (0)
/// Fault-injection site in a void/value context (thread-pool task bodies,
/// columnar build): delay and abort actions apply; an error action only
/// counts the fire (there is no Status channel to return it on).
#define UPA_FAILPOINT_HIT(site)                                      \
  do {                                                               \
    if (::upa::Failpoints::Instance().AnyActive()) {                 \
      (void)::upa::Failpoints::Instance().Evaluate(site);            \
    }                                                                \
  } while (0)
#else
#define UPA_FAILPOINT(site) \
  do {                      \
  } while (0)
#define UPA_FAILPOINT_HIT(site) \
  do {                          \
  } while (0)
#endif
