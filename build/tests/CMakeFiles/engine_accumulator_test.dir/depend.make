# Empty dependencies file for engine_accumulator_test.
# This may be replaced when dependencies are built.
