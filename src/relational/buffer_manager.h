// BufferManager: a process-wide memory budget for materialized columnar
// tables, in the spirit of a database buffer pool (cf. LeanStore/Umbra and
// HDK's executor-owned data mgr): the row stores are the durable "heap
// files", the ColumnarTable forms are the expensive cached representation,
// and this class decides which of them stay resident.
//
//   * Accounting — every Table::Columnar() materialization registers its
//     deterministic resident_bytes() here (fragment payloads + dictionaries;
//     a pure function of the data, so budget tests can assert exactly).
//   * Eviction — when an admission would push the resident total past the
//     budget, least-recently-used *unpinned* tables are evicted first. A
//     table is pinned while any query still holds its columnar form (shared
//     ownership observable as use_count > 1 under the table's cache_mu_);
//     pinned tables are never evicted, so an over-committed workload simply
//     runs over budget rather than corrupting in-flight scans.
//   * Spill — with a spill directory configured, an evicted table first
//     serializes its columnar payload (ColumnarTable::SpillTo) and the next
//     Columnar() call reloads it bit-identically instead of re-encoding the
//     row store (LoadSpill); without one, eviction falls back to dropping
//     the form and rebuilding on demand. Both paths reproduce the exact
//     same bytes, so results are independent of eviction timing.
//
// Lock order: BufferManager::mu_ → Table::cache_mu_ (eviction reaches into
// the victim's cache under both). Table never calls into the manager while
// holding cache_mu_.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace upa::rel {

class Table;

class BufferManager {
 public:
  struct Config {
    /// Resident-byte budget; 0 disables eviction (accounting still runs).
    size_t budget_bytes = 0;
    /// Directory for spill files; empty disables spilling (evicted tables
    /// rebuild their columnar form from rows on next use).
    std::string spill_dir;
  };

  struct Stats {
    size_t budget_bytes = 0;
    size_t resident_bytes = 0;
    /// High-water mark of resident_bytes since the last Configure/Reset.
    size_t peak_resident_bytes = 0;
    uint64_t admissions = 0;
    uint64_t evictions = 0;
    uint64_t spills_written = 0;
    uint64_t spill_loads = 0;
    /// Admissions that left the pool over budget because every candidate
    /// victim was pinned by an in-flight query.
    uint64_t over_budget_admissions = 0;
  };

  /// Process-wide instance. First use reads UPA_MEM_BUDGET_BYTES and
  /// UPA_SPILL_DIR from the environment (and sweeps stale spill files of
  /// dead processes out of the spill dir, if one is configured).
  static BufferManager& Instance();

  /// Replaces the configuration and resets the statistics. Does not evict
  /// already-resident tables retroactively (the next admission enforces the
  /// new budget) and keeps existing spill records valid. Entering a new
  /// spill dir sweeps it for stale files first.
  void Configure(const Config& config);
  Config config() const;
  Stats stats() const;
  void ResetStats();

  /// Registers (or refreshes) `table`'s materialized columnar form as the
  /// most recently used entry and enforces the budget by evicting LRU
  /// unpinned tables until `bytes` fits (or no victim remains). Called by
  /// Table::Columnar() after materialization, never under cache_mu_.
  void Admit(const Table* table, size_t bytes);

  /// Drops `table`'s accounting entry. `drop_spill` also deletes its spill
  /// file (table destruction); ReleaseCaches keeps the spill so the next
  /// materialization can still reload instead of re-encoding.
  void Forget(const Table* table, uint64_t uid, bool drop_spill);

  /// Path of `uid`'s spill file if one was successfully written and is
  /// still valid, else "".
  std::string SpillPathFor(uint64_t uid) const;

  /// Records that a Columnar() call reloaded from spill instead of
  /// rebuilding from rows.
  void NoteSpillLoad();

  /// Filename (not path) a spill for table `uid` would use under the
  /// current process namespace: "upa-spill-<pid>-<nonce>-<uid>.colspill".
  /// Table uids restart at 1 in every process, so two shards sharing a
  /// spill dir must qualify the uid with their pid — and, because pids are
  /// recycled, with a per-process startup nonce.
  std::string SpillFileName(uint64_t uid) const;

  /// Deletes `dir`'s spill files whose embedded owner pid is no longer
  /// alive (plus legacy files with no embedded pid). Files of live
  /// processes — including this one — are kept. Returns how many files
  /// were removed.
  static size_t SweepStaleSpills(const std::string& dir);

  /// Test hook: overrides the pid + nonce embedded in spill filenames so a
  /// single process can impersonate two "processes" sharing a spill dir.
  /// Already-recorded spill paths stay valid.
  void SetSpillNamespaceForTest(uint64_t pid, uint64_t nonce);

 private:
  BufferManager();

  /// Evicts LRU unpinned entries (never `incoming_table`) until
  /// resident_ + incoming_bytes fits the budget or candidates run out.
  /// Returns true when the budget is met. Requires mu_ held.
  bool EnforceBudgetLocked(size_t incoming_bytes, const Table* incoming_table);

  struct Entry {
    size_t bytes = 0;
    uint64_t lru = 0;  // global admission/touch sequence; smaller = older
  };

  mutable std::mutex mu_;
  Config config_;
  /// Spill-file namespace (see SpillFileName). Fixed at startup; the test
  /// hook may override.
  uint64_t spill_pid_ = 0;
  uint64_t spill_nonce_ = 0;
  uint64_t next_lru_ = 0;
  std::unordered_map<const Table*, Entry> entries_;
  std::unordered_map<uint64_t, std::string> spills_;  // table uid → file
  size_t resident_ = 0;
  size_t peak_ = 0;
  uint64_t admissions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t spills_written_ = 0;
  uint64_t spill_loads_ = 0;
  uint64_t over_budget_ = 0;
};

}  // namespace upa::rel
