#include "relational/columnar.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/cancel.h"
#include "common/exact_sum.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/status.h"
#include "relational/kernels.h"

namespace upa::rel {

// ---------------------------------------------------------------------------
// ColumnarTable
// ---------------------------------------------------------------------------

std::shared_ptr<const ColumnarTable> ColumnarTable::Build(
    Schema schema, const std::vector<Row>& rows) {
  // No Status channel here (delay/abort actions only; see failpoint.h).
  UPA_FAILPOINT_HIT("columnar/build");
  auto ct = std::shared_ptr<ColumnarTable>(new ColumnarTable());
  ct->schema_ = std::move(schema);
  ct->num_rows_ = rows.size();
  UPA_CHECK_MSG(rows.size() < std::numeric_limits<uint32_t>::max(),
                "table too large for columnar row ids");
  const size_t ncols = ct->schema_.NumColumns();
  for (const Row& row : rows) {
    UPA_CHECK_MSG(row.size() == ncols, "row arity mismatch in columnar build");
  }

  ct->columns_.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    Column& col = ct->columns_[c];
    if (rows.empty()) {
      // No cells to inspect: use the declared type (comparisons against an
      // empty column never execute, but compilation needs a dictionary).
      col.type = ct->schema_.column(c).type;
      if (col.type == ValueType::kString) {
        col.dict = std::make_shared<const std::vector<std::string>>();
      }
      continue;
    }
    bool has_string = false, has_double = false, has_numeric = false;
    for (const Row& row : rows) {
      switch (TypeOf(row[c])) {
        case ValueType::kString: has_string = true; break;
        case ValueType::kDouble: has_double = true; has_numeric = true; break;
        case ValueType::kInt: has_numeric = true; break;
      }
    }
    // Columns are typed by their *actual* cells, not the declared schema
    // type: an all-int64 column stays an int column even when declared
    // double, so strict accessors (AsInt join keys) behave like the row
    // oracle. A column mixing strings with numerics has no single physical
    // type — the row store tolerates that lazily, columnar storage cannot.
    UPA_CHECK_MSG(!(has_string && has_numeric),
                  "column mixes string and numeric cells: " +
                      ct->schema_.column(c).name);
    if (has_string) {
      col.type = ValueType::kString;
      auto dict = std::make_shared<std::vector<std::string>>();
      dict->reserve(rows.size());
      for (const Row& row : rows) {
        dict->push_back(std::get<std::string>(row[c]));
      }
      std::sort(dict->begin(), dict->end());
      dict->erase(std::unique(dict->begin(), dict->end()), dict->end());
      dict->shrink_to_fit();
      col.codes.reserve(rows.size());
      for (const Row& row : rows) {
        const std::string& s = std::get<std::string>(row[c]);
        col.codes.push_back(static_cast<uint32_t>(
            std::lower_bound(dict->begin(), dict->end(), s) - dict->begin()));
      }
      col.dict = std::move(dict);
    } else if (has_double) {
      col.type = ValueType::kDouble;
      col.doubles.reserve(rows.size());
      for (const Row& row : rows) col.doubles.push_back(AsNumeric(row[c]));
    } else {
      col.type = ValueType::kInt;
      col.ints.reserve(rows.size());
      for (const Row& row : rows) {
        col.ints.push_back(std::get<int64_t>(row[c]));
      }
    }
  }

  auto ident = std::make_shared<SelVector>(ct->num_rows_);
  std::iota(ident->begin(), ident->end(), 0u);
  ct->identity_ = std::move(ident);
  return ct;
}

// ---------------------------------------------------------------------------
// Vectorized evaluation
// ---------------------------------------------------------------------------

namespace {

/// Fixed kernel batch size. Batch boundaries depend only on the row count —
/// never on the pool size — so per-batch outputs concatenate to the same
/// sequence no matter how many threads run them (and every aggregate is
/// exact, so even that much determinism is belt-and-braces).
constexpr size_t kBatch = 4096;

constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();

/// Cache tags. Distinct from the row engine's key tags: the block cache is
/// type-erased, so the same key must never map to differently-typed entries.
constexpr uint64_t kColScanTag = 0xc015'ca90ULL;
constexpr uint64_t kColSubtreeTag = 0xc01c'ac40ULL;

/// One input of a relation in flight: a columnar table plus the row-index
/// vector mapping relation positions [0, num_rows) to physical rows. This
/// is the late-materialization representation — operators re-index, they
/// never copy cell data.
struct ColSource {
  std::shared_ptr<const ColumnarTable> table;
  std::shared_ptr<const SelVector> row_ids;
};

struct ColRel {
  std::vector<ColSource> sources;
  /// Schema position → (source index, column index within the source).
  std::vector<std::pair<uint32_t, uint32_t>> col_map;
  Schema schema;
  size_t num_rows = 0;
  /// Index into `sources` of the private table's scan, or -1. Its row-index
  /// vector *is* the provenance column: entry p is the private base-row
  /// index that relation row p descends from.
  int private_source = -1;
};

std::vector<const Column*> PhysicalColumns(const ColRel& rel) {
  std::vector<const Column*> cols(rel.col_map.size());
  for (size_t i = 0; i < rel.col_map.size(); ++i) {
    cols[i] =
        &rel.sources[rel.col_map[i].first].table->column(rel.col_map[i].second);
  }
  return cols;
}

BatchInput BindColumns(const ColRel& rel,
                       const std::vector<const Column*>& cols) {
  BatchInput in(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    in[i] = {cols[i], rel.sources[rel.col_map[i].first].row_ids->data()};
  }
  return in;
}

size_t NumBatches(size_t n) { return (n + kBatch - 1) / kBatch; }

class ColumnarEvaluator {
 public:
  ColumnarEvaluator(engine::ExecContext* ctx, const Catalog* catalog,
                    const ExecOptions& options)
      : ctx_(ctx), catalog_(catalog), options_(options) {
    engine_partitions_ = options.engine_partitions > 0
                             ? options.engine_partitions
                             : ctx->config().default_partitions;
  }

  Result<ColRel> Eval(const PlanPtr& plan) {
    // Fully-public subtrees are identical across a query's phase runs, so
    // their (cheap, index-only) relation state is cached — same policy as
    // the row engine, keyed structurally so distinct plans never collide.
    const bool cacheable = options_.use_scan_cache &&
                           plan->kind != PlanKind::kScan &&
                           !options_.private_table.empty() &&
                           CountScansOf(plan, options_.private_table) == 0;
    if (cacheable) {
      uint64_t key = PlanFingerprint(plan, *catalog_) ^
                     Mix64(kColSubtreeTag + engine_partitions_) ^
                     Mix64(options_.cache_epoch);
      std::shared_ptr<const ColRel> hit = ctx_->cache().Get<ColRel>(key);
      if (hit != nullptr) return *hit;
      Result<ColRel> fresh = EvalUncached(plan);
      if (!fresh.ok()) return fresh;
      ctx_->cache().Put<ColRel>(key, fresh.value());
      return fresh;
    }
    return EvalUncached(plan);
  }

 private:
  Result<ColRel> EvalUncached(const PlanPtr& plan) {
    // Between plan nodes is the coarse cancellation boundary; within a
    // node, the batch-kernel ParallelFor polls at chunk granularity.
    UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
    switch (plan->kind) {
      case PlanKind::kScan:
        return EvalScan(plan);
      case PlanKind::kFilter:
        return EvalFilter(plan);
      case PlanKind::kJoin:
        return EvalJoin(plan);
      case PlanKind::kAggregate:
        return Status::InvalidArgument(
            "Aggregate is only supported at the plan root");
    }
    return Status::Internal("unknown plan kind");
  }

  Result<ColRel> EvalScan(const PlanPtr& plan) {
    auto it = catalog_->find(plan->table);
    if (it == catalog_->end()) {
      return Status::NotFound("unknown table: " + plan->table);
    }
    const Table* table = it->second;
    const bool is_private = !options_.private_table.empty() &&
                            plan->table == options_.private_table;

    ColRel rel;
    rel.schema = table->schema();
    std::shared_ptr<const ColumnarTable> ct;
    std::shared_ptr<const SelVector> ids;
    if (!is_private) {
      if (options_.use_scan_cache) {
        // Route through the context block cache so scan reuse across phase
        // runs is observable in the hit/miss metrics (the Fig 4(b) effect),
        // exactly like the row engine's materialized-scan cache.
        uint64_t key = Mix64(table->uid()) ^
                       Mix64(kColScanTag + engine_partitions_) ^
                       Mix64(options_.cache_epoch);
        auto cached =
            ctx_->cache().GetOrCompute<std::shared_ptr<const ColumnarTable>>(
                key, [&] { return table->Columnar(); });
        ct = *cached;
      } else {
        ct = table->Columnar();
      }
      ids = ct->identity();
    } else {
      // The private table's include/exclude/replace options are plain
      // index-vector surgery: provenance is the row-index itself.
      ct = options_.replace_private_rows != nullptr
               ? ColumnarTable::Build(table->schema(),
                                      *options_.replace_private_rows)
               : table->Columnar();
      const size_t base_rows = ct->num_rows();
      if (options_.include_rows != nullptr) {
        auto sel = std::make_shared<SelVector>();
        sel->reserve(options_.include_rows->size());
        for (size_t idx : *options_.include_rows) {
          UPA_CHECK_MSG(idx < base_rows, "include_rows out of range");
          sel->push_back(static_cast<uint32_t>(idx));
        }
        ids = std::move(sel);
      } else if (options_.exclude_rows != nullptr) {
        const std::vector<size_t>& excl = *options_.exclude_rows;
        auto sel = std::make_shared<SelVector>();
        sel->reserve(base_rows - std::min(base_rows, excl.size()));
        size_t cursor = 0;
        for (size_t i = 0; i < base_rows; ++i) {
          if (cursor < excl.size() && excl[cursor] == i) {
            ++cursor;
            continue;
          }
          sel->push_back(static_cast<uint32_t>(i));
        }
        ids = std::move(sel);
      } else {
        ids = ct->identity();
      }
      rel.private_source = 0;
    }
    rel.num_rows = ids->size();
    rel.sources.push_back({std::move(ct), std::move(ids)});
    rel.col_map.resize(rel.schema.NumColumns());
    for (size_t c = 0; c < rel.schema.NumColumns(); ++c) {
      rel.col_map[c] = {0, static_cast<uint32_t>(c)};
    }
    return rel;
  }

  Result<ColRel> EvalFilter(const PlanPtr& plan) {
    Result<ColRel> childr = Eval(plan->left);
    if (!childr.ok()) return childr.status();
    ColRel child = std::move(childr.value());
    if (!ExprColumnsExist(plan->predicate, child.schema)) {
      return Status::InvalidArgument("filter references unknown column in " +
                                     plan->predicate->ToString());
    }
    std::vector<const Column*> cols = PhysicalColumns(child);
    const CompiledExpr pred = CompileExpr(plan->predicate, child.schema, cols);
    const BatchInput in = BindColumns(child, cols);

    const size_t n = child.num_rows;
    SelVector all(n);
    std::iota(all.begin(), all.end(), 0u);
    const size_t nb = NumBatches(n);
    std::vector<SelVector> hits(nb);
    ctx_->pool().ParallelFor(nb, [&](size_t b) {
      size_t begin = b * kBatch, end = std::min(n, begin + kBatch);
      FilterKernel(pred, in, all.data() + begin, end - begin, hits[b]);
    });
    ctx_->metrics().AddKernelBatches(nb);
    ctx_->metrics().AddKernelRows(n);
    return Reindex(std::move(child), hits);
  }

  /// Replaces every source's row-index vector with its gather through the
  /// per-batch selections (concatenated in batch order).
  ColRel Reindex(ColRel rel, const std::vector<SelVector>& hits) {
    const size_t nb = hits.size();
    std::vector<size_t> offset(nb + 1, 0);
    for (size_t b = 0; b < nb; ++b) offset[b + 1] = offset[b] + hits[b].size();
    const size_t total = offset[nb];
    std::vector<std::shared_ptr<SelVector>> fresh(rel.sources.size());
    for (auto& f : fresh) f = std::make_shared<SelVector>(total);
    ctx_->pool().ParallelFor(nb, [&](size_t b) {
      const SelVector& h = hits[b];
      for (size_t s = 0; s < rel.sources.size(); ++s) {
        const uint32_t* old_ids = rel.sources[s].row_ids->data();
        uint32_t* out = fresh[s]->data() + offset[b];
        for (size_t i = 0; i < h.size(); ++i) out[i] = old_ids[h[i]];
      }
    });
    for (size_t s = 0; s < rel.sources.size(); ++s) {
      rel.sources[s].row_ids = std::move(fresh[s]);
    }
    rel.num_rows = total;
    return rel;
  }

  /// Join-key column as a dense int64 array (one entry per relation row).
  std::vector<int64_t> KeyColumn(const ColRel& rel, size_t pos) {
    const auto& [s, c] = rel.col_map[pos];
    const Column& col = rel.sources[s].table->column(c);
    const uint32_t* ids = rel.sources[s].row_ids->data();
    const size_t n = rel.num_rows;
    if (n > 0) {
      // The row oracle keys joins through strict AsInt per row.
      UPA_CHECK_MSG(col.type == ValueType::kInt, "Value is not an int");
    }
    std::vector<int64_t> keys(n);
    const int64_t* vals = col.ints.data();
    ctx_->pool().ParallelFor(NumBatches(n), [&](size_t b) {
      size_t begin = b * kBatch, end = std::min(n, begin + kBatch);
      for (size_t i = begin; i < end; ++i) keys[i] = vals[ids[i]];
    });
    return keys;
  }

  Result<ColRel> EvalJoin(const PlanPtr& plan) {
    Result<ColRel> lr = Eval(plan->left);
    if (!lr.ok()) return lr.status();
    Result<ColRel> rr = Eval(plan->right);
    if (!rr.ok()) return rr.status();
    ColRel left = std::move(lr.value());
    ColRel right = std::move(rr.value());

    auto lk = left.schema.Find(plan->left_key);
    auto rk = right.schema.Find(plan->right_key);
    if (!lk || !rk) {
      return Status::InvalidArgument("join key not found: " + plan->left_key +
                                     "=" + plan->right_key);
    }
    std::vector<int64_t> lkeys = KeyColumn(left, *lk);
    std::vector<int64_t> rkeys = KeyColumn(right, *rk);

    // Build a chained open-addressing table from the hinted side (set by
    // the cost-based optimizer from estimated cardinalities) or, absent a
    // hint, from the smaller materialized side; probe with the other in
    // batches. Output order is deterministic (probe order, chain order) —
    // and irrelevant to results anyway, since every downstream aggregate is
    // exact and order-independent.
    const bool build_left =
        plan->build_side == BuildSide::kAuto
            ? left.num_rows <= right.num_rows
            : plan->build_side == BuildSide::kLeft;
    const std::vector<int64_t>& bkeys = build_left ? lkeys : rkeys;
    const std::vector<int64_t>& pkeys = build_left ? rkeys : lkeys;
    const size_t nbuild = bkeys.size();
    const size_t nprobe = pkeys.size();

    // Per probe batch: matching (build position, probe position) pairs.
    const size_t nb = NumBatches(nprobe);
    std::vector<std::pair<SelVector, SelVector>> pairs(nb);
    if (nbuild > 0 && nprobe > 0) {
      size_t cap = 16;
      while (cap < nbuild * 2) cap <<= 1;
      const uint64_t mask = cap - 1;
      std::vector<uint32_t> slot_head(cap, kNone);
      std::vector<int64_t> slot_key(cap);
      std::vector<uint32_t> next(nbuild);
      for (size_t i = 0; i < nbuild; ++i) {
        const int64_t k = bkeys[i];
        size_t s = Mix64(static_cast<uint64_t>(k)) & mask;
        while (true) {
          if (slot_head[s] == kNone) {
            slot_key[s] = k;
            next[i] = kNone;
            slot_head[s] = static_cast<uint32_t>(i);
            break;
          }
          if (slot_key[s] == k) {
            next[i] = slot_head[s];
            slot_head[s] = static_cast<uint32_t>(i);
            break;
          }
          s = (s + 1) & mask;
        }
      }
      ctx_->pool().ParallelFor(nb, [&](size_t b) {
        auto& [bpos, ppos] = pairs[b];
        size_t begin = b * kBatch, end = std::min(nprobe, begin + kBatch);
        for (size_t j = begin; j < end; ++j) {
          const int64_t k = pkeys[j];
          size_t s = Mix64(static_cast<uint64_t>(k)) & mask;
          while (slot_head[s] != kNone) {
            if (slot_key[s] == k) {
              for (uint32_t i = slot_head[s]; i != kNone; i = next[i]) {
                bpos.push_back(i);
                ppos.push_back(static_cast<uint32_t>(j));
              }
              break;
            }
            s = (s + 1) & mask;
          }
        }
      });
    }
    ctx_->metrics().AddKernelBatches(nb);
    ctx_->metrics().AddKernelRows(nprobe);
    // In the distributed plan this engine models, a join exchanges both
    // sides (the row engine's HashJoin shuffles each input); count the same
    // rounds/records so overhead attribution stays engine-independent.
    ctx_->metrics().AddShuffleRound();
    ctx_->metrics().AddShuffleRecords(left.num_rows);
    ctx_->metrics().AddShuffleRound();
    ctx_->metrics().AddShuffleRecords(right.num_rows);

    std::vector<size_t> offset(nb + 1, 0);
    for (size_t b = 0; b < nb; ++b) {
      offset[b + 1] = offset[b] + pairs[b].first.size();
    }
    const size_t total = offset[nb];
    UPA_CHECK_MSG(total < std::numeric_limits<uint32_t>::max(),
                  "join output too large for columnar row ids");

    ColRel out;
    out.schema = Schema::Concat(left.schema, right.schema);
    out.num_rows = total;
    const size_t nleft = left.sources.size();
    out.sources.resize(nleft + right.sources.size());
    std::vector<std::shared_ptr<SelVector>> fresh(out.sources.size());
    for (size_t s = 0; s < out.sources.size(); ++s) {
      const ColSource& src =
          s < nleft ? left.sources[s] : right.sources[s - nleft];
      out.sources[s].table = src.table;
      fresh[s] = std::make_shared<SelVector>(total);
    }
    ctx_->pool().ParallelFor(nb, [&](size_t b) {
      // Left-side rows come from the build positions iff we built from the
      // left; right-side rows from the other element of the pair.
      const SelVector& lpos = build_left ? pairs[b].first : pairs[b].second;
      const SelVector& rpos = build_left ? pairs[b].second : pairs[b].first;
      for (size_t s = 0; s < out.sources.size(); ++s) {
        const ColSource& src =
            s < nleft ? left.sources[s] : right.sources[s - nleft];
        const SelVector& pos = s < nleft ? lpos : rpos;
        const uint32_t* old_ids = src.row_ids->data();
        uint32_t* dst = fresh[s]->data() + offset[b];
        for (size_t i = 0; i < pos.size(); ++i) dst[i] = old_ids[pos[i]];
      }
    });
    for (size_t s = 0; s < out.sources.size(); ++s) {
      out.sources[s].row_ids = std::move(fresh[s]);
    }

    out.col_map.reserve(left.col_map.size() + right.col_map.size());
    for (const auto& [s, c] : left.col_map) out.col_map.push_back({s, c});
    for (const auto& [s, c] : right.col_map) {
      out.col_map.push_back({static_cast<uint32_t>(s + nleft), c});
    }
    if (left.private_source >= 0) {
      out.private_source = left.private_source;
    } else if (right.private_source >= 0) {
      out.private_source = static_cast<int>(right.private_source + nleft);
    }
    return out;
  }

  engine::ExecContext* ctx_;
  const Catalog* catalog_;
  const ExecOptions& options_;
  size_t engine_partitions_;
};

/// Per-batch aggregation state, merged in batch order (merge order is
/// irrelevant: exact sums commute; min/max are associative).
struct BatchAgg {
  ExactSum sum;
  std::unordered_map<size_t, ExactSum> contrib;
  std::vector<ExactSum> parts;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
};

}  // namespace

Result<ExecResult> ExecuteColumnar(engine::ExecContext* ctx,
                                   const Catalog* catalog, const PlanPtr& plan,
                                   const ExecOptions& options) {
  UPA_FAILPOINT("columnar/execute");
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
  ColumnarEvaluator evaluator(ctx, catalog, options);
  Result<ColRel> relr = evaluator.Eval(plan->left);
  if (!relr.ok()) return relr.status();
  ColRel rel = std::move(relr.value());

  const bool additive =
      plan->agg == AggKind::kCount || plan->agg == AggKind::kSum;
  if (!additive && (options.partitions > 0 || options.track_contributions)) {
    return Status::Unsupported(
        "provenance (partitions/contributions) requires an additive "
        "aggregate (Count or Sum)");
  }
  const bool need_expr = plan->agg != AggKind::kCount;
  if (need_expr && plan->agg_expr == nullptr) {
    return Status::InvalidArgument("aggregate missing expression");
  }

  const size_t n = rel.num_rows;
  const size_t nb = NumBatches(n);
  std::vector<const Column*> cols = PhysicalColumns(rel);
  std::optional<CompiledExpr> weight;
  BatchInput in;
  if (need_expr) {
    weight.emplace(CompileExpr(plan->agg_expr, rel.schema, cols));
    in = BindColumns(rel, cols);
  }
  SelVector all(n);
  std::iota(all.begin(), all.end(), 0u);

  const uint32_t* prov = rel.private_source >= 0
                             ? rel.sources[rel.private_source].row_ids->data()
                             : nullptr;
  const size_t parts = options.partitions;

  std::vector<BatchAgg> batches(nb);
  ctx->pool().ParallelFor(nb, [&](size_t b) {
    const size_t begin = b * kBatch, end = std::min(n, begin + kBatch);
    const size_t m = end - begin;
    BatchAgg& agg = batches[b];
    std::vector<double> w;
    if (need_expr) {
      w.resize(m);
      ProjectKernel(*weight, in, all.data() + begin, m, w.data());
    } else {
      w.assign(m, 1.0);  // Count
    }
    if (!additive) {
      for (size_t i = 0; i < m; ++i) {
        agg.sum.Add(w[i]);
        agg.mn = w[i] < agg.mn ? w[i] : agg.mn;  // == std::min(mn, w)
        agg.mx = w[i] > agg.mx ? w[i] : agg.mx;  // == std::max(mx, w)
      }
      return;
    }
    for (size_t i = 0; i < m; ++i) agg.sum.Add(w[i]);
    if (prov != nullptr) {
      if (options.track_contributions) {
        for (size_t i = 0; i < m; ++i) agg.contrib[prov[begin + i]].Add(w[i]);
      }
      if (parts > 0) {
        agg.parts.resize(parts);
        for (size_t i = 0; i < m; ++i) {
          agg.parts[prov[begin + i] % parts].Add(w[i]);
        }
      }
    }
  });
  ctx->metrics().AddKernelBatches(nb);
  ctx->metrics().AddKernelRows(n);

  ExecResult result;
  result.result_rows = n;
  ExactSum total;
  for (const BatchAgg& b : batches) total.Merge(b.sum);

  if (!additive) {
    if (n == 0) {
      return Status::FailedPrecondition(
          "Avg/Min/Max aggregate over an empty relation");
    }
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const BatchAgg& b : batches) {
      mn = b.mn < mn ? b.mn : mn;
      mx = b.mx > mx ? b.mx : mx;
    }
    switch (plan->agg) {
      case AggKind::kAvg:
        result.output = total.Round() / static_cast<double>(n);
        break;
      case AggKind::kMin:
        result.output = mn;
        break;
      default:  // kMax
        result.output = mx;
        break;
    }
    return result;
  }

  result.output = total.Round();
  if (options.track_contributions) {
    std::unordered_map<size_t, ExactSum> merged;
    for (const BatchAgg& b : batches) {
      for (const auto& [p, s] : b.contrib) merged[p].Merge(s);
    }
    result.contributions.reserve(merged.size());
    for (const auto& [p, s] : merged) result.contributions[p] = s.Round();
  }
  if (parts > 0) {
    // The RANGE ENFORCER's per-partition aggregation is a real record
    // exchange in the row engine (ShuffleByKey over provenance-carrying
    // rows); account the same round here.
    ctx->metrics().AddShuffleRound();
    ctx->metrics().AddShuffleRecords(prov != nullptr ? n : 0);
    // partition_outputs[pid] = Round(base ⊕ Σ weights of pid's rows),
    // where base covers rows without private provenance (here: all rows
    // when the plan has no private scan, none otherwise — inner joins give
    // every row of a private plan a provenance index).
    ExactSum base;
    if (prov == nullptr) base = total;
    std::vector<ExactSum> pid_sums(parts);
    if (prov != nullptr) {
      for (const BatchAgg& b : batches) {
        if (b.parts.empty()) continue;
        for (size_t p = 0; p < parts; ++p) pid_sums[p].Merge(b.parts[p]);
      }
    }
    result.partition_outputs.resize(parts);
    for (size_t p = 0; p < parts; ++p) {
      ExactSum t = base;
      t.Merge(pid_sums[p]);
      result.partition_outputs[p] = t.Round();
    }
  }
  return result;
}

}  // namespace upa::rel
