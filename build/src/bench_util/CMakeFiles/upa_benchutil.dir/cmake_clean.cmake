file(REMOVE_RECURSE
  "CMakeFiles/upa_benchutil.dir/harness.cpp.o"
  "CMakeFiles/upa_benchutil.dir/harness.cpp.o.d"
  "libupa_benchutil.a"
  "libupa_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
