// Logical-plan optimizer: predicate pushdown plus cost-based rewrites.
//
// The SQL front-end places the whole WHERE clause above the joins;
// PushDownFilters splits it into conjuncts and sinks each one to the
// lowest node whose schema covers its columns (per-table conjuncts reach
// their scans, cross-table conjuncts stay above the join that first joins
// their tables; conjuncts over a column both join sides provide stay above
// that join — bare-name resolution must never pick a side). Aggregates are
// opaque barriers: conjuncts never cross one, but the subtree beneath it
// is optimized with a fresh batch.
//
// Optimize() layers the cost-based rewrites on top (Selinger-style split:
// relational/card_est.h estimates cardinalities, relational/cost_model.h
// prices plans):
//   * greedy join reordering over the join graph — cheapest edge first,
//     then repeatedly attach the relation minimizing the estimated join
//     output; the reordered tree is kept only when the cost model agrees
//     it is cheaper,
//   * per-filter conjunct ordering by ascending estimated selectivity,
//   * hash-build side hints (PlanNode::build_side) where the estimated
//     cardinalities differ decisively.
// Every rewrite preserves semantics exactly: inner-join SPJ trees with
// exact (order-independent) aggregates make reordering a theorem, asserted
// bit-for-bit by the optimizer differential suite against both engines.
#pragma once

#include "relational/plan.h"

namespace upa::rel {

/// Knobs for Optimize. The defaults enable everything; Disabled() is the
/// off-switch differential tests and benchmarks use to obtain the
/// unoptimized baseline of the same plan.
struct OptimizerOptions {
  bool pushdown = true;
  bool reorder_joins = true;
  bool order_conjuncts = true;
  bool choose_build_side = true;
  /// Mark fusible Aggregate(Filter*(Scan)) roots with FuseMode::kFuse so
  /// the physical choice is recorded in the plan (and its fingerprint).
  bool fuse = true;
  /// When set, joins with this table on either side keep BuildSide::kAuto:
  /// UPA's phase runs shrink the private side at runtime (include/exclude
  /// row subsets), so static estimates would mispredict the build side.
  std::string private_table;

  static OptimizerOptions Disabled() {
    OptimizerOptions o;
    o.pushdown = o.reorder_joins = o.order_conjuncts = o.choose_build_side =
        o.fuse = false;
    return o;
  }
};

/// Returns a semantically identical plan: filters pushed down, join trees
/// reordered where the cost model finds a cheaper shape, conjuncts ordered
/// most-selective-first, hash-build sides hinted. The catalog resolves
/// which scan provides which column and supplies the statistics.
PlanPtr Optimize(const PlanPtr& plan, const Catalog& catalog,
                 const OptimizerOptions& options = {});

/// Returns an equivalent plan with filter conjuncts pushed as deep as
/// their column references allow. The catalog resolves which scan provides
/// which column. Plans without filters are returned unchanged.
PlanPtr PushDownFilters(const PlanPtr& plan, const Catalog& catalog);

/// The inverse rewrite, for benchmarks and differential tests: every
/// filter below an aggregate is lifted to a single conjoined predicate
/// directly under that aggregate (the shape the SQL front-end emits).
/// Semantically identical for the inner-join plans the engine runs.
PlanPtr LiftFilters(const PlanPtr& plan);

/// Splits a predicate into top-level AND conjuncts (exposed for tests).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// All column names referenced by an expression (exposed for tests).
std::vector<std::string> ReferencedColumns(const ExprPtr& expr);

}  // namespace upa::rel
