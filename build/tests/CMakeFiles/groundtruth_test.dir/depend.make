# Empty dependencies file for groundtruth_test.
# This may be replaced when dependencies are built.
