// A SQL front-end for the relational layer: single-block SELECT statements
// over scans, equi-joins and filters, with scalar and grouped aggregation —
// the query class the engine actually executes (scalar kAggregate plans,
// enumerated per group by relational/sql_exec.h).
//
//   SELECT COUNT(*) FROM lineitem
//   SELECT SUM(l_extendedprice * l_discount) FROM lineitem
//          WHERE l_shipdate >= 365 AND l_shipdate < 730
//   SELECT l_returnflag, SUM(l_quantity) AS qty, AVG(l_extendedprice)
//          FROM orders JOIN lineitem ON o_orderkey = l_orderkey
//          WHERE o_totalprice > 1000
//          GROUP BY l_returnflag HAVING COUNT(*) > 10
//          ORDER BY qty DESC, l_returnflag LIMIT 5
//
// Grammar (case-insensitive keywords):
//   select  := SELECT item (',' item)* FROM ident
//              (JOIN ident ON ident '=' ident)*
//              (WHERE expr)?
//              (GROUP BY ident (',' ident)*)?
//              (HAVING expr)?
//              (ORDER BY okey (',' okey)*)?
//              (LIMIT int)?
//   item    := expr (AS ident)?
//   okey    := expr (ASC | DESC)?        -- also: select-list alias, or a
//                                           1-based integer ordinal
//   agg     := COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' expr ')'
//   expr    := or; or := and (OR and)*; and := not (AND not)*
//   not     := NOT not | cmp
//   cmp     := add (cmpop add)? | add IN '(' literal (',' literal)* ')'
//   add     := mul (('+'|'-') mul)*; mul := prim (('*'|'/') prim)*
//   prim    := number | 'string' | ident | agg | '(' expr ')'
//
// Aggregate calls are legal in select items, HAVING and ORDER BY (not in
// WHERE or join conditions, and not nested). The parser hoists each
// distinct call into an AggSlot and replaces it with a synthetic "$aggN"
// column reference, so items/HAVING/ORDER BY are plain expressions over
// [group-by columns..., $agg0, $agg1, ...]. Statement-level rules enforced
// here: every non-aggregate column reference in items/HAVING/ORDER BY must
// be a GROUP BY column, HAVING requires GROUP BY, and LIMIT takes a
// non-negative integer literal.
//
// The WHERE clause parses to a single Filter above the joins; predicate
// placement is the optimizer's job (relational/optimizer.h pushes
// conjuncts down to their scans since PR 6).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/plan.h"

namespace upa::rel {

/// One hoisted aggregate call. `expr` is the summed expression for
/// SUM/AVG/MIN/MAX and null for COUNT(*).
struct AggSlot {
  AggKind kind = AggKind::kCount;
  ExprPtr expr;
};

/// One select-list entry: an expression over group-by columns and "$aggN"
/// references, its display name (the source text, or the AS alias), and
/// the alias itself ("" when absent).
struct SelectItem {
  ExprPtr expr;
  std::string name;
  std::string alias;
};

/// One ORDER BY key, already resolved: aliases and ordinals are replaced
/// by the referenced item's expression at parse time.
struct OrderKey {
  ExprPtr expr;
  bool desc = false;
};

/// A parsed single-block SELECT. `relation` is the FROM/JOIN/WHERE plan
/// tree (no aggregate root); grouping, HAVING, ordering and LIMIT are
/// evaluated by ExecuteSelect (relational/sql_exec.h) on top of scalar
/// aggregate runs of `relation`.
struct SqlSelect {
  std::vector<SelectItem> items;
  std::vector<AggSlot> aggs;
  PlanPtr relation;
  std::vector<std::string> group_by;
  ExprPtr having;                  // null when absent; uses "$aggN" refs
  std::vector<OrderKey> order_by;
  int64_t limit = -1;              // -1 = no LIMIT
};

/// Parses one SELECT statement. Errors carry the offending position/token
/// in the message.
Result<SqlSelect> ParseSqlSelect(const std::string& sql);

/// Parses a statement that must be a single bare aggregate (the scalar
/// subset the DP release path consumes) into a logical plan. Statements
/// using the wider surface (multiple items, GROUP BY/HAVING/ORDER BY/
/// LIMIT, arithmetic around the aggregate) fail with INVALID_ARGUMENT —
/// run those through ParseSqlSelect + ExecuteSelect.
Result<PlanPtr> ParseSql(const std::string& sql);

/// Builds the scalar aggregate plan for one hoisted slot over `relation`.
PlanPtr PlanForAgg(PlanPtr relation, const AggSlot& slot);

}  // namespace upa::rel
