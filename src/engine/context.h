// ExecContext: the engine's "SparkContext".
//
// Owns the scheduler thread pool, the metrics registry and the block cache.
// Datasets hold a pointer to their context; one context is shared by all
// datasets of an experiment.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/cache.h"
#include "engine/metrics.h"

namespace upa::engine {

struct ExecConfig {
  /// Worker threads for partition tasks (0 = hardware concurrency).
  size_t threads = 0;
  /// Default partition count for new datasets (the paper partitions the
  /// input into two for the Range Enforcer; analytics use more).
  size_t default_partitions = 4;
};

class ExecContext {
 public:
  explicit ExecContext(ExecConfig config = {})
      : config_(config),
        pool_(std::make_unique<ThreadPool>(config.threads)),
        cache_(&metrics_) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ThreadPool& pool() { return *pool_; }
  ExecMetrics& metrics() { return metrics_; }
  BlockCache& cache() { return cache_; }
  const ExecConfig& config() const { return config_; }

  /// The cancel token governing the current request on this thread
  /// (installed by the service's CancelScope), or nullptr when none. One
  /// context serves many concurrent queries, so the token rides the
  /// thread-local scope rather than the context itself.
  static CancelToken* CurrentCancel() { return CancelScope::Current(); }
  /// OK, or the current token's kCancelled/kDeadlineExceeded status.
  /// Polls any armed deadline; engine phases call this between stages.
  static Status CheckCancel() { return CancelScope::CheckCurrent(); }

  /// Time a named phase; attributed in metrics().Snapshot().phase_seconds.
  template <typename Fn>
  auto TimePhase(const char* phase, Fn&& fn) {
    Stopwatch watch;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      metrics_.AddPhaseSeconds(phase, watch.ElapsedSeconds());
    } else {
      auto result = fn();
      metrics_.AddPhaseSeconds(phase, watch.ElapsedSeconds());
      return result;
    }
  }

 private:
  ExecConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  ExecMetrics metrics_;
  BlockCache cache_;
};

}  // namespace upa::engine
