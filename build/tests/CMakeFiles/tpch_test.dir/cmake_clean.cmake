file(REMOVE_RECURSE
  "CMakeFiles/tpch_test.dir/tpch_test.cpp.o"
  "CMakeFiles/tpch_test.dir/tpch_test.cpp.o.d"
  "tpch_test"
  "tpch_test.pdb"
  "tpch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
