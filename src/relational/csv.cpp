#include "relational/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace upa::rel {
namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  return out + "\"";
}

/// Splits one CSV record (handles quoted fields; `pos` advances past the
/// record's trailing newline). Returns false at end of input. `truncated`
/// reports a record terminated by end-of-input instead of a newline — a
/// malformation signal when the record is also short on fields.
bool NextRecord(const std::string& csv, size_t& pos,
                std::vector<std::string>& fields, bool& bad_quoting,
                bool& truncated) {
  fields.clear();
  bad_quoting = false;
  truncated = false;
  if (pos >= csv.size()) return false;
  std::string field;
  bool in_quotes = false;
  while (pos < csv.size()) {
    char c = csv[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < csv.size() && csv[pos + 1] == '"') {
          field += '"';
          pos += 2;
          continue;
        }
        in_quotes = false;
        ++pos;
        continue;
      }
      field += c;
      ++pos;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++pos;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
      continue;
    }
    if (c == '\n') {
      ++pos;
      fields.push_back(std::move(field));
      return true;
    }
    if (c == '\r') {  // tolerate CRLF
      ++pos;
      continue;
    }
    field += c;
    ++pos;
  }
  if (in_quotes) bad_quoting = true;
  truncated = true;
  fields.push_back(std::move(field));
  return true;
}

/// Row context for malformed-input errors: "line N, column 'name'".
std::string CellContext(size_t line, const std::string& column) {
  return "line " + std::to_string(line) + ", column '" + column + "'";
}

Result<Value> ParseCell(const std::string& text, ValueType type, size_t line,
                        const std::string& column) {
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument(CellContext(line, column) +
                                       ": not an integer: '" + text + "'");
      }
      if (errno == ERANGE) {
        // strtoll silently clamps on overflow; surface it instead of
        // loading a corrupted value.
        return Status::InvalidArgument(CellContext(line, column) +
                                       ": integer out of range: '" + text +
                                       "'");
      }
      return Value{static_cast<int64_t>(v)};
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument(CellContext(line, column) +
                                       ": not a number: '" + text + "'");
      }
      if (errno == ERANGE && std::isinf(v)) {
        return Status::InvalidArgument(CellContext(line, column) +
                                       ": number out of range: '" + text +
                                       "'");
      }
      return Value{v};
    }
    case ValueType::kString:
      return Value{text};
  }
  return Status::Internal("unknown value type");
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    out += QuoteField(schema.column(c).name);
    out += (c + 1 < schema.NumColumns()) ? "," : "\n";
  }
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += QuoteField(ToString(row[c]));
      out += (c + 1 < row.size()) ? "," : "\n";
    }
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::Internal("cannot open for write: " + path);
  std::string csv = TableToCsv(table);
  file.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  if (!file) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<Table> TableFromCsv(const std::string& name, const Schema& schema,
                           const std::string& csv) {
  UPA_FAILPOINT("csv/load");
  size_t pos = 0;
  std::vector<std::string> fields;
  bool bad_quoting = false;
  bool truncated = false;
  if (!NextRecord(csv, pos, fields, bad_quoting, truncated)) {
    return Status::InvalidArgument("empty CSV (missing header)");
  }
  if (bad_quoting) {
    return Status::InvalidArgument("unterminated quote in header");
  }
  if (fields.size() != schema.NumColumns()) {
    return Status::InvalidArgument("header arity mismatch: expected " +
                                   std::to_string(schema.NumColumns()) +
                                   ", got " + std::to_string(fields.size()));
  }
  for (size_t c = 0; c < fields.size(); ++c) {
    if (fields[c] != schema.column(c).name) {
      return Status::InvalidArgument("header column " + std::to_string(c) +
                                     " is '" + fields[c] + "', expected '" +
                                     schema.column(c).name + "'");
    }
  }

  std::vector<Row> rows;
  size_t line = 1;
  while (NextRecord(csv, pos, fields, bad_quoting, truncated)) {
    ++line;
    if (bad_quoting) {
      return Status::InvalidArgument("line " + std::to_string(line) +
                                     ": unterminated quote");
    }
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.NumColumns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line) + ": expected " +
          std::to_string(schema.NumColumns()) + " fields, got " +
          std::to_string(fields.size()) +
          (truncated && fields.size() < schema.NumColumns()
               ? " (truncated row at end of input)"
               : ""));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      Result<Value> cell = ParseCell(fields[c], schema.column(c).type, line,
                                     schema.column(c).name);
      if (!cell.ok()) return cell.status();
      row.push_back(std::move(cell).value());
    }
    rows.push_back(std::move(row));
  }
  return Table(name, schema, std::move(rows));
}

Result<Table> ReadCsvFile(const std::string& name, const Schema& schema,
                          const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return TableFromCsv(name, schema, buffer.str());
}

}  // namespace upa::rel
