// One cluster shard: a stock UpaService + net::Server with its own journal
// directory, spoken to by the cluster router (src/cluster/router.h). The
// query language is the toy wire-SQL the net tests use, which keeps shard
// behaviour deterministic for the differential and chaos suites:
//
//   count:<n>           COUNT over n synthetic records
//   lat:<n>:<us>        the same, but the post step sleeps <us> microseconds
//                       — a stand-in for shard-local work that is latency-
//                       rather than CPU-bound (bench_cluster_throughput
//                       drives these to measure cluster scaling on small
//                       machines without the shards fighting for cores)
//
// Usage:
//   upa_shard [--port N] [--port-file PATH] [--journal-dir DIR]
//             [--shard-name NAME] [--threads N] [--max-in-flight N]
//             [--sample-n N] [--budget EPS] [--no-fsync]
//
// Prints "READY <port>" on stdout once listening (after journal replay),
// then serves until SIGTERM/SIGINT. UPA_FAILPOINTS is honoured via the
// environment, which is how the chaos tests make a shard crash at a chosen
// journal boundary.
#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "service/service.h"
#include "upa/simple_query.h"

using namespace upa;

namespace {

engine::ExecContext* g_ctx = nullptr;

core::QueryInstance ToyQuery(size_t n, int64_t post_sleep_us,
                             const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = g_ctx;
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  core::QueryInstance q = core::MakeSimpleQuery(std::move(spec));
  if (post_sleep_us > 0) {
    // Exactly one sleep per query: wrap the (once-per-release) phase
    // runner, not map/post, which run per record / per neighbour.
    auto inner = std::move(q.execute_phases);
    q.execute_phases = [inner, post_sleep_us](
                           std::span<const size_t> sample_indices,
                           size_t num_partitions, size_t num_domain,
                           uint64_t seed) {
      std::this_thread::sleep_for(std::chrono::microseconds(post_sleep_us));
      return inner(sample_indices, num_partitions, num_domain, seed);
    };
  }
  return q;
}

net::QueryCompiler ToyCompiler() {
  return [](const net::WireQuery& wire) -> Result<core::QueryInstance> {
    if (wire.sql.rfind("count:", 0) == 0) {
      return ToyQuery(std::stoul(wire.sql.substr(6)), 0, wire.sql);
    }
    if (wire.sql.rfind("lat:", 0) == 0) {
      const std::string rest = wire.sql.substr(4);
      const size_t colon = rest.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("lat:<n>:<us> expected: " + wire.sql);
      }
      return ToyQuery(std::stoul(rest.substr(0, colon)),
                      std::stol(rest.substr(colon + 1)), wire.sql);
    }
    return Status::InvalidArgument("unknown toy SQL: " + wire.sql);
  };
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  std::string port_file;
  service::ServiceConfig svc_cfg;
  svc_cfg.upa.sample_n = 32;  // small, deterministic; overridable
  svc_cfg.budget_per_dataset = 1e9;  // chaos/bench runs pick their own
  size_t threads = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--journal-dir") {
      svc_cfg.journal_dir = next();
    } else if (arg == "--shard-name") {
      svc_cfg.shard_name = next();
    } else if (arg == "--threads") {
      threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--max-in-flight") {
      svc_cfg.max_in_flight = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--sample-n") {
      svc_cfg.upa.sample_n = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--budget") {
      svc_cfg.budget_per_dataset = std::atof(next());
    } else if (arg == "--no-fsync") {
      svc_cfg.journal_fsync = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // Block the shutdown signals BEFORE any thread spawns so every thread
  // inherits the mask and sigwait below is race-free.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  engine::ExecContext ctx(engine::ExecConfig{
      .threads = threads, .default_partitions = threads});
  g_ctx = &ctx;

  // Construction replays the journal: by the time the server is listening
  // (and can answer the router's health probe), the registry/ledger/epoch
  // state is the recovered one.
  service::UpaService service(&ctx, svc_cfg);

  net::ServerConfig net_cfg;
  net_cfg.port = port;
  net::Server server(&service, ToyCompiler(), net_cfg);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }
  }
  std::printf("READY %u\n", server.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  server.Stop();
  return 0;
}
