// Storage-layer benchmarks: fragmented columnar scans, morsel scheduling,
// and budgeted execution.
//
//   1. scan_skipping — a selective filter over a key-ordered table, run
//      monolithic (one fragment, zone maps useless) vs fragmented (default
//      8K-row fragments, ~98% of fragments pruned by the zone maps). Both
//      runs produce bit-identical outputs; only the wall clock moves.
//   2. morsel_vs_static — the scheduling experiment: per-item work drawn
//      from a Zipf-like 1/(rank+1) profile, sorted worst-first (exactly the
//      shape a key-ordered skewed join produces). Static contiguous chunks
//      strand most of the work on one worker; the shared-cursor morsel loop
//      load-balances it. Two numbers are reported: wall clock measured on
//      this host (which degenerates to ~1.0x on a single-core machine,
//      where any schedule executes serially), and a deterministic makespan
//      model at 8 virtual workers — the machine-independent headline the
//      >= 1.3x acceptance target applies to; the measured ratio approaches
//      it as physical cores increase.
//   3. budget_tpch — the full TPC-H query sweep under a memory budget
//      deliberately smaller than the dataset's total columnar bytes (but
//      covering any single query's working set). The run must complete,
//      evict at least once, keep peak fragment-resident bytes <= budget,
//      and reproduce the unlimited-budget outputs bit-for-bit.
//
// Emits BENCH_storage.json (override with UPA_BENCH_JSON). Knobs:
// UPA_ORDERS, UPA_RUNS, UPA_THREADS, UPA_SEED (src/bench_util/harness.h).
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "engine/context.h"
#include "relational/buffer_manager.h"
#include "relational/columnar.h"
#include "relational/executor.h"
#include "relational/expr.h"
#include "relational/plan.h"
#include "relational/table.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

using namespace upa;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// 1. Fragmented vs monolithic scan under a selective filter.

struct ScanResult {
  double seconds = 0.0;
  double output = 0.0;
  uint64_t fragments_scanned = 0;
  uint64_t fragments_skipped = 0;
};

ScanResult TimeSelectiveScan(size_t rows, size_t fragment_rows, size_t threads,
                             size_t runs) {
  struct FragGuard {
    size_t saved = rel::DefaultFragmentRows();
    ~FragGuard() { rel::SetDefaultFragmentRows(saved); }
  } guard;
  rel::SetDefaultFragmentRows(fragment_rows);

  // Key-ordered rows: zone maps on "key" are tight intervals, so a
  // selective range predicate prunes all but the leading fragments.
  rel::Schema schema({{"key", rel::ValueType::kInt},
                      {"val", rel::ValueType::kDouble}});
  std::vector<rel::Row> data;
  data.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    data.push_back({rel::Value{static_cast<int64_t>(i)},
                    rel::Value{0.125 * static_cast<double>(i % 97)}});
  }
  rel::Table table("events", schema, data);
  rel::Catalog catalog{{"events", &table}};

  const int64_t cutoff = static_cast<int64_t>(rows / 50);  // ~2% selectivity
  rel::PlanPtr plan = rel::SumPlan(
      rel::FilterPlan(rel::ScanPlan("events"),
                      rel::Lt(rel::Col("key"), rel::Lit(cutoff))),
      rel::Col("val"));

  engine::ExecContext ctx(
      engine::ExecConfig{.threads = threads, .default_partitions = 4});
  rel::PlanExecutor exec(&ctx, &catalog);
  rel::ExecOptions opts;
  opts.use_scan_cache = false;
  opts.engine = rel::ExecEngine::kColumnar;

  table.Columnar();  // materialize outside the timed region

  ScanResult best;
  best.seconds = 1e100;
  for (size_t r = 0; r < runs; ++r) {
    const double t0 = Now();
    Result<rel::ExecResult> res = exec.Execute(plan, opts);
    const double dt = Now() - t0;
    UPA_CHECK_MSG(res.ok(), "scan bench failed: " + res.status().ToString());
    if (dt < best.seconds) {
      best.seconds = dt;
      best.output = res.value().output;
    }
  }
  engine::MetricsSnapshot snap = ctx.metrics().Snapshot();
  // Counters accumulate over the repetitions; report per-run figures.
  best.fragments_scanned = snap.counters["columnar/fragments_scanned"] / runs;
  best.fragments_skipped = snap.counters["columnar/fragments_skipped"] / runs;
  return best;
}

// ---------------------------------------------------------------------------
// 2. Morsel-driven vs static-chunk scheduling under Zipf-skewed work.

uint64_t SpinWork(uint64_t x, size_t iters) {
  for (size_t i = 0; i < iters; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return x;
}

struct SchedResult {
  double static_seconds = 0.0;
  double morsel_seconds = 0.0;
  double static_makespan = 0.0;  // modeled, work units, kModelWorkers
  double morsel_makespan = 0.0;
  uint64_t checksum_static = 0;
  uint64_t checksum_morsel = 0;
};

/// Virtual worker count for the makespan model (fixed, so the headline
/// number does not depend on the benchmark host).
constexpr size_t kModelWorkers = 8;

SchedResult TimeScheduling(size_t threads, size_t runs) {
  ThreadPool pool(threads);
  constexpr size_t kItems = 512;
  constexpr size_t kZipfBase = 400000;
  // work[i] ~ 1/(i+1), sorted worst-first: item 0 alone carries ~15% of the
  // total, the first 1/T of the items the lion's share — the adversarial
  // case for static contiguous partitioning.
  std::vector<size_t> work(kItems);
  for (size_t i = 0; i < kItems; ++i) {
    work[i] = std::max<size_t>(1, kZipfBase / (i + 1));
  }

  SchedResult best;
  // Makespan model: static = the contiguous chunks ParallelForChunks hands
  // out (worker w owns one chunk, finishing at its chunk's total work);
  // morsel = greedy pull off a shared cursor (each item goes to the worker
  // that frees up first — what ParallelForMorsels converges to when
  // per-item cost dominates the cursor fetch).
  {
    const size_t per = (kItems + kModelWorkers - 1) / kModelWorkers;
    for (size_t w = 0; w < kModelWorkers; ++w) {
      double load = 0.0;
      for (size_t i = w * per; i < std::min(kItems, (w + 1) * per); ++i) {
        load += static_cast<double>(work[i]);
      }
      best.static_makespan = std::max(best.static_makespan, load);
    }
    std::vector<double> free_at(kModelWorkers, 0.0);
    for (size_t i = 0; i < kItems; ++i) {
      size_t w = 0;
      for (size_t c = 1; c < kModelWorkers; ++c) {
        if (free_at[c] < free_at[w]) w = c;
      }
      free_at[w] += static_cast<double>(work[i]);
      best.morsel_makespan = std::max(best.morsel_makespan, free_at[w]);
    }
  }

  auto run_one = [&](bool morsel) {
    std::atomic<uint64_t> sink{0};
    auto body = [&](size_t b, size_t e) {
      uint64_t acc = 0;
      for (size_t i = b; i < e; ++i) {
        acc ^= SpinWork(static_cast<uint64_t>(i) + 1, work[i]);
      }
      sink.fetch_xor(acc, std::memory_order_relaxed);
    };
    const double t0 = Now();
    if (morsel) {
      pool.ParallelForMorsels(kItems, 1, body);
    } else {
      pool.ParallelForChunks(kItems, body);
    }
    return std::pair<double, uint64_t>{Now() - t0, sink.load()};
  };

  best.static_seconds = best.morsel_seconds = 1e100;
  for (size_t r = 0; r < runs; ++r) {
    auto [ts, cs] = run_one(/*morsel=*/false);
    auto [tm, cm] = run_one(/*morsel=*/true);
    best.static_seconds = std::min(best.static_seconds, ts);
    best.morsel_seconds = std::min(best.morsel_seconds, tm);
    best.checksum_static = cs;
    best.checksum_morsel = cm;
  }
  UPA_CHECK_MSG(best.checksum_static == best.checksum_morsel,
                "scheduling variants computed different results");
  return best;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Fragmented storage, morsel scheduling, memory budget",
                     env);

  const size_t scan_rows = std::max<size_t>(20000, env.orders * 100);

  // --- 1. scan_skipping
  ScanResult mono =
      TimeSelectiveScan(scan_rows, scan_rows, env.threads, env.runs);
  ScanResult frag = TimeSelectiveScan(scan_rows, 8192, env.threads, env.runs);
  UPA_CHECK_MSG(std::bit_cast<uint64_t>(mono.output) ==
                    std::bit_cast<uint64_t>(frag.output),
                "fragmented scan changed the output");
  const double scan_speedup =
      mono.seconds / std::max(1e-9, frag.seconds);
  {
    TablePrinter t({"layout", "fragments", "skipped", "time (ms)", "speedup"});
    t.AddRow({"monolithic", std::to_string(mono.fragments_scanned),
              std::to_string(mono.fragments_skipped),
              TablePrinter::FormatDouble(mono.seconds * 1e3, 3), "1.00"});
    t.AddRow({"8K fragments",
              std::to_string(frag.fragments_scanned + frag.fragments_skipped),
              std::to_string(frag.fragments_skipped),
              TablePrinter::FormatDouble(frag.seconds * 1e3, 3),
              TablePrinter::FormatDouble(scan_speedup, 2)});
    t.Print("Selective scan (~2% of " + std::to_string(scan_rows) +
            " key-ordered rows), min over runs");
  }

  // --- 2. morsel_vs_static
  SchedResult sched = TimeScheduling(env.threads, env.runs);
  const double measured_speedup =
      sched.static_seconds / std::max(1e-9, sched.morsel_seconds);
  const double sched_speedup =
      sched.static_makespan / std::max(1.0, sched.morsel_makespan);
  UPA_CHECK_MSG(sched_speedup >= 1.3,
                "morsel scheduling lost its load-balancing advantage");
  {
    TablePrinter t({"scheduler", "measured (ms)", "makespan (8 workers)",
                    "speedup"});
    t.AddRow({"static chunks",
              TablePrinter::FormatDouble(sched.static_seconds * 1e3, 3),
              TablePrinter::FormatDouble(sched.static_makespan, 0), "1.00"});
    t.AddRow({"morsel cursor",
              TablePrinter::FormatDouble(sched.morsel_seconds * 1e3, 3),
              TablePrinter::FormatDouble(sched.morsel_makespan, 0),
              TablePrinter::FormatDouble(sched_speedup, 2)});
    t.Print("Zipf-skewed work, worst-first order (makespan target >= 1.3x; "
            "measured ratio " +
            TablePrinter::FormatDouble(measured_speedup, 2) + "x on " +
            std::to_string(std::thread::hardware_concurrency()) +
            " hw threads)");
  }

  // --- 3. budget_tpch
  tpch::TpchDataset data(tpch::TpchConfig{.num_orders = env.orders,
                                          .max_lineitems_per_order = 7,
                                          .reference_skew = 1.1,
                                          .seed = env.seed});
  rel::Catalog catalog = data.catalog();
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = env.threads, .default_partitions = 4});
  rel::PlanExecutor exec(&ctx, &catalog);
  rel::ExecOptions opts;
  opts.use_scan_cache = false;
  opts.engine = rel::ExecEngine::kColumnar;

  // Size the budget: it must fit any single query's working set (the tables
  // that query joins are all pinned at once) but not the whole dataset.
  std::map<std::string, size_t> table_bytes;
  size_t total_bytes = 0;
  for (const auto& [name, table] : catalog) {
    table_bytes[name] = table->Columnar()->resident_bytes();
    total_bytes += table_bytes[name];
  }
  size_t max_working_set = 0;
  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    std::set<std::string> tables;
    for (const std::string& t : rel::AnalyzePlan(q.plan).tables) {
      tables.insert(t);
    }
    size_t ws = 0;
    for (const std::string& t : tables) ws += table_bytes[t];
    max_working_set = std::max(max_working_set, ws);
  }
  const size_t budget = max_working_set + 4096;

  // Baseline outputs with no budget in force.
  std::vector<double> baseline;
  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    Result<rel::ExecResult> res = exec.Execute(q.plan, opts);
    UPA_CHECK_MSG(res.ok(), "baseline failed: " + res.status().ToString());
    baseline.push_back(res.value().output);
  }

  // Drop every cached columnar form, then re-run the sweep under the
  // budget with spill-to-disk enabled.
  rel::BufferManager& mgr = rel::BufferManager::Instance();
  const rel::BufferManager::Config saved = mgr.config();
  for (const auto& [name, table] : catalog) table->ReleaseCaches();
  mgr.Configure({.budget_bytes = budget, .spill_dir = "/tmp"});

  bool identical = true;
  double budget_seconds = Now();
  {
    size_t qi = 0;
    for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
      Result<rel::ExecResult> res = exec.Execute(q.plan, opts);
      UPA_CHECK_MSG(res.ok(),
                    "budgeted run failed: " + res.status().ToString());
      identical = identical &&
                  std::bit_cast<uint64_t>(res.value().output) ==
                      std::bit_cast<uint64_t>(baseline[qi]);
      ++qi;
    }
  }
  budget_seconds = Now() - budget_seconds;
  const rel::BufferManager::Stats st = mgr.stats();
  mgr.Configure(saved);

  UPA_CHECK_MSG(identical, "budgeted outputs diverged from baseline");
  UPA_CHECK_MSG(st.peak_resident_bytes <= budget,
                "peak resident bytes exceeded the budget");
  UPA_CHECK_MSG(total_bytes <= budget || st.evictions > 0,
                "over-budget sweep never evicted");
  {
    TablePrinter t({"metric", "value"});
    t.AddRow({"total columnar bytes", std::to_string(total_bytes)});
    t.AddRow({"budget bytes", std::to_string(budget)});
    t.AddRow({"peak resident bytes", std::to_string(st.peak_resident_bytes)});
    t.AddRow({"evictions", std::to_string(st.evictions)});
    t.AddRow({"spills written", std::to_string(st.spills_written)});
    t.AddRow({"spill reloads", std::to_string(st.spill_loads)});
    t.AddRow({"over-budget admissions",
              std::to_string(st.over_budget_admissions)});
    t.AddRow({"sweep time (ms)",
              TablePrinter::FormatDouble(budget_seconds * 1e3, 3)});
    t.Print("TPC-H sweep under memory budget (outputs bit-identical: " +
            std::string(identical ? "yes" : "NO") + ")");
  }

  const char* path_env = std::getenv("UPA_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_storage.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  UPA_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::fprintf(
      f,
      "{\n  \"experiment\": \"storage\",\n"
      "  \"orders\": %zu,\n  \"runs\": %zu,\n  \"threads\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"scan_skipping\": {\n"
      "    \"rows\": %zu,\n"
      "    \"monolithic_ms\": %s,\n    \"fragmented_ms\": %s,\n"
      "    \"speedup\": %s,\n"
      "    \"fragments_scanned\": %llu,\n    \"fragments_skipped\": %llu\n"
      "  },\n"
      "  \"morsel_vs_static\": {\n"
      "    \"measured_static_ms\": %s,\n    \"measured_morsel_ms\": %s,\n"
      "    \"measured_speedup\": %s,\n"
      "    \"modeled_workers\": %zu,\n"
      "    \"static_makespan\": %s,\n    \"morsel_makespan\": %s,\n"
      "    \"speedup\": %s\n"
      "  },\n"
      "  \"budget_tpch\": {\n"
      "    \"total_bytes\": %zu,\n    \"budget_bytes\": %zu,\n"
      "    \"peak_resident_bytes\": %zu,\n"
      "    \"evictions\": %llu,\n    \"spills_written\": %llu,\n"
      "    \"spill_loads\": %llu,\n    \"over_budget_admissions\": %llu,\n"
      "    \"within_budget\": %s,\n    \"identical\": %s\n"
      "  }\n}\n",
      env.orders, env.runs, ctx.pool().thread_count(),
      static_cast<unsigned long long>(env.seed), scan_rows,
      JsonNum(mono.seconds * 1e3).c_str(), JsonNum(frag.seconds * 1e3).c_str(),
      JsonNum(scan_speedup).c_str(),
      static_cast<unsigned long long>(frag.fragments_scanned),
      static_cast<unsigned long long>(frag.fragments_skipped),
      JsonNum(sched.static_seconds * 1e3).c_str(),
      JsonNum(sched.morsel_seconds * 1e3).c_str(),
      JsonNum(measured_speedup).c_str(), kModelWorkers,
      JsonNum(sched.static_makespan).c_str(),
      JsonNum(sched.morsel_makespan).c_str(),
      JsonNum(sched_speedup).c_str(), total_bytes, budget,
      st.peak_resident_bytes,
      static_cast<unsigned long long>(st.evictions),
      static_cast<unsigned long long>(st.spills_written),
      static_cast<unsigned long long>(st.spill_loads),
      static_cast<unsigned long long>(st.over_budget_admissions),
      st.peak_resident_bytes <= budget ? "true" : "false",
      identical ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
