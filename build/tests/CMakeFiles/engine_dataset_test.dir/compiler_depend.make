# Empty compiler generated dependencies file for engine_dataset_test.
# This may be replaced when dependencies are built.
