# Empty dependencies file for relational_table_plan_test.
# This may be replaced when dependencies are built.
