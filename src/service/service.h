// UpaService: a thread-safe, multi-tenant front door for the UPA release
// path (ROADMAP north star: one deployed service answering many analysts'
// queries over many private datasets concurrently).
//
// What the service owns, per dataset:
//   - the RANGE ENFORCER registry (Algorithm 2 state shared by every query
//     over that dataset, whoever submits it),
//   - the privacy budget (one PrivacyAccountant across datasets, with
//     charge/refund two-phase semantics: a query is charged before it runs
//     and refunded if it fails before releasing anything),
//   - a data epoch plus an LRU cache of inferred sensitivities/output
//     ranges keyed by query fingerprint × epoch: a repeated query shape on
//     unchanged data skips phase 3b's exclusion scans and the normal fit —
//     the expensive half of a run — and releases bit-identically to the
//     full run (see core::SensitivityHint).
//
// Admission and ordering:
//   - at most `max_in_flight` queries execute at once (global), and at
//     most one per tenant — so each tenant's submissions execute in FIFO
//     order on the engine ThreadPool. With one writer per dataset this
//     makes concurrent operation bit-identical to a sequential replay of
//     each tenant's sequence (asserted by the stress suite).
//   - per-tenant backlogs are bounded; overflow is rejected with
//     RESOURCE_EXHAUSTED rather than queued without bound.
//   - releases on one dataset serialize on a per-dataset lock (two tenants
//     sharing a dataset stay sound; their interleaving is then admission
//     order, not bit-reproducible — that is inherent, the registry is
//     order-dependent).
//
// Observability: per-phase latency histograms (service/queue,
// service/total, upa/sample|map|reduce|enforce) and named counters
// (admissions, rejections, cache hits/misses, refunds, suspected attacks)
// recorded in the ExecContext's engine::Metrics, plus a "/stats"-style
// text dump (StatsReport) used by examples/sql_console.cpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "dp/accountant.h"
#include "engine/context.h"
#include "upa/runner.h"

namespace upa::service {

struct ServiceConfig {
  /// Per-release pipeline defaults; `epsilon` is overridden per request.
  core::UpaConfig upa;
  /// Privacy budget per dataset (sequential composition cap).
  double budget_per_dataset = 4.0;
  /// Global cap on concurrently executing queries.
  size_t max_in_flight = 4;
  /// Bound on each tenant's backlog; overflow is rejected.
  size_t max_queue_per_tenant = 256;
  /// Capacity of each dataset's sensitivity LRU cache (0 disables reuse).
  size_t sensitivity_cache_capacity = 64;
};

struct QueryRequest {
  /// Queueing/fairness unit: one tenant's requests run one at a time, in
  /// submission order.
  std::string tenant;
  /// Privacy unit: scopes the enforcer registry, budget and epoch.
  std::string dataset_id;
  core::QueryInstance query;
  double epsilon = 0.1;
  /// Drives sampling/noise (same request + same registry state → same
  /// released bits). Callers choose it so replays are reproducible.
  uint64_t seed = 0;
  /// Query-shape fingerprint for the sensitivity cache (PlanFingerprint
  /// for relational plans); 0 → derived from the query name.
  uint64_t fingerprint = 0;
};

struct QueryResponse {
  double released = 0.0;
  double epsilon = 0.0;
  double local_sensitivity = 0.0;
  Interval out_range;
  bool attack_suspected = false;
  size_t records_removed = 0;
  bool degenerate_sensitivity = false;
  /// True when the sensitivity/range came from the per-dataset LRU cache
  /// (the run skipped the exclusion scans).
  bool sensitivity_cache_hit = false;
  uint64_t dataset_epoch = 0;
  /// Time spent queued before execution started.
  double queue_seconds = 0.0;
  core::PhaseSeconds seconds;
};

class UpaService {
 public:
  explicit UpaService(engine::ExecContext* ctx, ServiceConfig config = {});
  /// Drains: blocks until every admitted request has completed.
  ~UpaService();

  UpaService(const UpaService&) = delete;
  UpaService& operator=(const UpaService&) = delete;

  /// Enqueue a request on its tenant's FIFO queue. The future resolves
  /// when the release completes (or is rejected/fails). Rejections
  /// (backlog full, shutdown) resolve immediately.
  std::future<Result<QueryResponse>> Submit(QueryRequest request);

  /// Submit + wait. Do not call from inside an engine pool task.
  Result<QueryResponse> Execute(QueryRequest request);

  /// Announce that `dataset_id`'s underlying data changed: bumps the
  /// epoch, which invalidates every cached sensitivity for the dataset.
  void BumpEpoch(const std::string& dataset_id);
  uint64_t Epoch(const std::string& dataset_id) const;

  /// Size of the dataset's sensitivity cache (tests/stats).
  size_t CachedSensitivities(const std::string& dataset_id) const;

  dp::PrivacyAccountant& accountant() { return accountant_; }
  engine::ExecContext* ctx() { return ctx_; }
  const ServiceConfig& config() const { return config_; }

  /// "/stats"-style plain-text dump: admission state, per-tenant queue
  /// stats, per-dataset budget/registry/cache state, latency histograms.
  std::string StatsReport() const;

 private:
  struct Pending {
    QueryRequest request;
    std::promise<Result<QueryResponse>> promise;
    Stopwatch queued;
  };

  struct TenantState {
    // shared_ptr: the in-flight task keeps its Pending alive past service
    // destruction (and ThreadPool::Submit needs a copyable callable).
    std::deque<std::shared_ptr<Pending>> queue;
    bool running = false;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
  };

  /// One dataset's sensitivity LRU: (fingerprint, epoch) → hint, most
  /// recently used at the front. Guarded by DatasetState::mu.
  struct SensitivityCache {
    using Key = std::pair<uint64_t, uint64_t>;
    std::list<std::pair<Key, core::SensitivityHint>> entries;
    std::map<Key, decltype(entries)::iterator> index;

    bool Lookup(const Key& key, core::SensitivityHint* out);
    void Insert(const Key& key, const core::SensitivityHint& hint,
                size_t capacity);
    void Clear();
    size_t size() const { return entries.size(); }
  };

  struct DatasetState {
    // Guards epoch/cache/queries for short reads and writes only. Release
    // paths never overlap on a dataset — the dispatcher admits at most one
    // in-flight request per dataset (see busy_datasets_) — so this mutex
    // is never held across a run. Holding it across one would deadlock: a
    // pool worker waiting inside the runner's ParallelFor help-runs queued
    // tasks, and could pick up a second request for the same dataset.
    std::mutex mu;
    std::shared_ptr<core::RangeEnforcer> enforcer =
        std::make_shared<core::RangeEnforcer>();
    uint64_t epoch = 0;
    uint64_t queries = 0;
    SensitivityCache cache;
  };

  std::shared_ptr<DatasetState> DatasetFor(const std::string& dataset_id);
  /// Dispatch queued requests while a global slot is free; at most one
  /// in-flight request per tenant (keeps each tenant FIFO) and at most one
  /// per dataset (serializes the registry/budget/cache without holding a
  /// lock across the run). A tenant whose head request targets a busy
  /// dataset waits — head-of-line order is what makes per-dataset request
  /// order deterministic. Called with `mu_` held.
  void MaybeDispatchLocked();
  Result<QueryResponse> RunOne(QueryRequest& request, double queue_seconds);

  engine::ExecContext* ctx_;
  ServiceConfig config_;
  dp::PrivacyAccountant accountant_;

  mutable std::mutex mu_;  // tenants_, busy_datasets_, in_flight_, shutdown
  std::condition_variable idle_cv_;
  std::map<std::string, TenantState> tenants_;
  /// Datasets with a request currently in flight.
  std::set<std::string> busy_datasets_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;

  mutable std::mutex datasets_mu_;
  std::map<std::string, std::shared_ptr<DatasetState>> datasets_;
};

}  // namespace upa::service
