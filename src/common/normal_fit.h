// Normal-distribution MLE fit and percentile interval.
//
// UPA (Algorithm 1, lines 17–21) fits a normal distribution to the outputs
// of the sampled neighbouring datasets by maximum likelihood and takes the
// [P1, P99] interval as both the constrained output range Ô_f and the
// inferred local sensitivity (P99 − P1). This module provides exactly that.
#pragma once

#include <span>

namespace upa {

/// MLE parameters of a normal distribution (mean, population stddev).
struct NormalParams {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Maximum-likelihood fit: mean = sample mean, stddev = population stddev
/// (MLE divides by N). Empty input yields {0, 0}.
NormalParams FitNormalMle(std::span<const double> xs);

/// Standard normal inverse CDF (quantile). p must be in (0, 1).
/// Acklam's rational approximation (|relative error| < 1.15e-9).
double StandardNormalQuantile(double p);

/// Quantile of N(mean, stddev) at probability p in (0, 1).
double NormalQuantile(const NormalParams& params, double p);

/// The inferred output range of Algorithm 1: [quantile(loPct), quantile(hiPct)]
/// of the MLE normal fit. Percentiles in (0, 100).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }
  /// Clamp x into the interval.
  double Clamp(double x) const;
};

Interval NormalPercentileInterval(std::span<const double> xs, double lo_pct,
                                  double hi_pct);

}  // namespace upa
