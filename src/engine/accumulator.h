// Accumulators: Spark-style write-only shared variables for side-channel
// statistics (records seen, filtered counts, custom tallies) from inside
// parallel tasks. Commutative-associative merging only — the same algebra
// UPA relies on — so accumulation order never changes results.
#pragma once

#include <atomic>
#include <mutex>

#include "common/status.h"

namespace upa::engine {

/// Thread-safe counting accumulator (the common case).
class CounterAccumulator {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Generic accumulator over a user monoid: T must be copyable; `combine`
/// must be commutative and associative.
template <typename T, typename Combine>
class Accumulator {
 public:
  Accumulator(T identity, Combine combine)
      : identity_(identity), value_(identity), combine_(std::move(combine)) {}

  void Add(const T& contribution) {
    std::lock_guard lock(mu_);
    value_ = combine_(value_, contribution);
  }

  T value() const {
    std::lock_guard lock(mu_);
    return value_;
  }

  void Reset() {
    std::lock_guard lock(mu_);
    value_ = identity_;
  }

 private:
  T identity_;
  mutable std::mutex mu_;
  T value_;
  Combine combine_;
};

template <typename T, typename Combine>
Accumulator(T, Combine) -> Accumulator<T, Combine>;

}  // namespace upa::engine
