// Table II reproduction: the evaluated queries, their type, and which of
// UPA / FLEX supports each. Paper result: UPA 9/9, FLEX 5/9 (the count
// queries built from Select/Join/Filter/Count).
#include <algorithm>
#include <cstdio>

#include "bench_util/harness.h"
#include "common/table_printer.h"
#include "upa/runner.h"

int main() {
  using namespace upa;
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Table II — evaluated queries and system support", env);

  queries::QuerySuite suite(env.MakeSuiteConfig());
  core::UpaConfig upa_cfg = env.MakeUpaConfig();
  upa_cfg.sample_n = std::min<size_t>(upa_cfg.sample_n, 200);  // probe run

  TablePrinter table({"Query", "Private records", "Query Type",
                      "Support By UPA", "Support By FLEX", "FLEX note"});
  size_t upa_supported = 0, flex_supported = 0;
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    const auto& info = suite.Info(name);

    // UPA support is demonstrated, not asserted: run the query through the
    // full pipeline.
    core::UpaRunner runner(upa_cfg);
    auto result = runner.Run(suite.MakeInstance(name), env.seed);
    bool upa_ok = result.ok();
    if (upa_ok) ++upa_supported;

    auto flex = suite.RunFlex(name);
    if (flex.supported) ++flex_supported;

    table.AddRow({name, std::to_string(suite.NumPrivateRecords(name)),
                  info.query_type, upa_ok ? "yes" : "NO",
                  flex.supported ? "yes" : "no",
                  flex.supported ? "" : flex.unsupported_reason});
  }
  table.Print("Table II: query support matrix");
  std::printf("\nUPA supports %zu/9 queries; FLEX supports %zu/9 queries "
              "(paper: 9/9 vs 5/9).\n",
              upa_supported, flex_supported);
  return 0;
}
