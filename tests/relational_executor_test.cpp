// PlanExecutor correctness: SPJ semantics, provenance contributions,
// partition outputs, and option handling — all validated against
// straightforward hand computations and naive re-execution.
#include "relational/executor.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "relational/plan.h"

namespace upa::rel {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : ctx_(engine::ExecConfig{.threads = 2, .default_partitions = 3}) {
    // users(uid, age); clicks(cid, uid_ref, weight)
    users_ = std::make_unique<Table>(
        "users",
        Schema({{"uid", ValueType::kInt}, {"age", ValueType::kInt}}),
        std::vector<Row>{
            {Value{int64_t{1}}, Value{int64_t{20}}},
            {Value{int64_t{2}}, Value{int64_t{30}}},
            {Value{int64_t{3}}, Value{int64_t{40}}},
            {Value{int64_t{4}}, Value{int64_t{50}}},
        });
    clicks_ = std::make_unique<Table>(
        "clicks",
        Schema({{"cid", ValueType::kInt},
                {"uid_ref", ValueType::kInt},
                {"weight", ValueType::kDouble}}),
        std::vector<Row>{
            {Value{int64_t{100}}, Value{int64_t{1}}, Value{1.5}},
            {Value{int64_t{101}}, Value{int64_t{1}}, Value{2.5}},
            {Value{int64_t{102}}, Value{int64_t{2}}, Value{4.0}},
            {Value{int64_t{103}}, Value{int64_t{3}}, Value{8.0}},
            {Value{int64_t{104}}, Value{int64_t{9}}, Value{16.0}},  // dangling
        });
    catalog_ = {{"users", users_.get()}, {"clicks", clicks_.get()}};
    executor_ = std::make_unique<PlanExecutor>(&ctx_, &catalog_);
  }

  engine::ExecContext ctx_;
  std::unique_ptr<Table> users_, clicks_;
  Catalog catalog_;
  std::unique_ptr<PlanExecutor> executor_;
};

TEST_F(ExecutorTest, CountScan) {
  auto r = executor_->Execute(CountPlan(ScanPlan("users")));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().output, 4.0);
  EXPECT_EQ(r.value().result_rows, 4u);
}

TEST_F(ExecutorTest, CountWithFilter) {
  auto plan = CountPlan(
      FilterPlan(ScanPlan("users"), Ge(Col("age"), Lit(int64_t{30}))));
  auto r = executor_->Execute(plan);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().output, 3.0);
}

TEST_F(ExecutorTest, SumWithExpression) {
  auto plan = SumPlan(ScanPlan("clicks"), Mul(Col("weight"), Lit(2.0)));
  auto r = executor_->Execute(plan);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().output, 2.0 * (1.5 + 2.5 + 4.0 + 8.0 + 16.0));
}

TEST_F(ExecutorTest, JoinCount) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"));
  auto r = executor_->Execute(plan);
  ASSERT_TRUE(r.ok());
  // user 1 ↔ 2 clicks, user 2 ↔ 1, user 3 ↔ 1; uid 9 dangles.
  EXPECT_DOUBLE_EQ(r.value().output, 4.0);
}

TEST_F(ExecutorTest, JoinThenFilterOnBothSides) {
  auto plan = CountPlan(FilterPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"),
      And(Ge(Col("age"), Lit(int64_t{20})), Gt(Col("weight"), Lit(2.0)))));
  auto r = executor_->Execute(plan);
  ASSERT_TRUE(r.ok());
  // qualifying: (1,101,2.5), (2,102,4.0), (3,103,8.0).
  EXPECT_DOUBLE_EQ(r.value().output, 3.0);
}

TEST_F(ExecutorTest, ContributionsMatchPerRecordInfluence) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"));
  ExecOptions opts;
  opts.private_table = "users";
  opts.track_contributions = true;
  auto r = executor_->Execute(plan, opts);
  ASSERT_TRUE(r.ok());
  // user row 0 (uid 1) contributes 2 joined rows, rows 1 and 2 one each,
  // row 3 (uid 4) zero.
  EXPECT_DOUBLE_EQ(r.value().contributions.at(0), 2.0);
  EXPECT_DOUBLE_EQ(r.value().contributions.at(1), 1.0);
  EXPECT_DOUBLE_EQ(r.value().contributions.at(2), 1.0);
  EXPECT_EQ(r.value().contributions.count(3), 0u);
}

TEST_F(ExecutorTest, ContributionsEqualNaiveRemoval) {
  auto plan = SumPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"),
      Col("weight"));
  ExecOptions opts;
  opts.private_table = "clicks";
  opts.track_contributions = true;
  auto full = executor_->Execute(plan, opts);
  ASSERT_TRUE(full.ok());

  for (size_t excluded = 0; excluded < clicks_->NumRows(); ++excluded) {
    std::vector<size_t> excl{excluded};
    ExecOptions opts2;
    opts2.private_table = "clicks";
    opts2.exclude_rows = &excl;
    auto without = executor_->Execute(plan, opts2);
    ASSERT_TRUE(without.ok());
    auto it = full.value().contributions.find(excluded);
    double influence = it == full.value().contributions.end() ? 0.0
                                                              : it->second;
    EXPECT_NEAR(without.value().output, full.value().output - influence,
                1e-9)
        << "excluded row " << excluded;
  }
}

TEST_F(ExecutorTest, IncludeRowsRestrictsPrivateTable) {
  auto plan = CountPlan(ScanPlan("users"));
  std::vector<size_t> include{0, 2};
  ExecOptions opts;
  opts.private_table = "users";
  opts.include_rows = &include;
  auto r = executor_->Execute(plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().output, 2.0);
}

TEST_F(ExecutorTest, ReplacePrivateRowsSubstitutesContent) {
  auto plan = SumPlan(ScanPlan("clicks"), Col("weight"));
  std::vector<Row> synthetic{
      {Value{int64_t{900}}, Value{int64_t{1}}, Value{100.0}},
      {Value{int64_t{901}}, Value{int64_t{2}}, Value{200.0}},
  };
  ExecOptions opts;
  opts.private_table = "clicks";
  opts.replace_private_rows = &synthetic;
  opts.track_contributions = true;
  auto r = executor_->Execute(plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().output, 300.0);
  EXPECT_DOUBLE_EQ(r.value().contributions.at(0), 100.0);
  EXPECT_DOUBLE_EQ(r.value().contributions.at(1), 200.0);
}

TEST_F(ExecutorTest, ReplacePlusIncludeComposes) {
  auto plan = SumPlan(ScanPlan("clicks"), Col("weight"));
  std::vector<Row> synthetic{
      {Value{int64_t{900}}, Value{int64_t{1}}, Value{100.0}},
      {Value{int64_t{901}}, Value{int64_t{2}}, Value{200.0}},
      {Value{int64_t{902}}, Value{int64_t{3}}, Value{400.0}},
  };
  std::vector<size_t> include{1};
  ExecOptions opts;
  opts.private_table = "clicks";
  opts.replace_private_rows = &synthetic;
  opts.include_rows = &include;
  auto r = executor_->Execute(plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().output, 200.0);
}

TEST_F(ExecutorTest, PartitionOutputsSumToTotal) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"));
  ExecOptions opts;
  opts.private_table = "users";
  opts.partitions = 2;
  auto r = executor_->Execute(plan, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().partition_outputs.size(), 2u);
  EXPECT_DOUBLE_EQ(
      r.value().partition_outputs[0] + r.value().partition_outputs[1],
      r.value().output);
  // Partition 0 holds users rows 0, 2 (uid 1 → 2 rows, uid 3 → 1 row).
  EXPECT_DOUBLE_EQ(r.value().partition_outputs[0], 3.0);
  EXPECT_DOUBLE_EQ(r.value().partition_outputs[1], 1.0);
}

TEST_F(ExecutorTest, RejectsNonAggregateRoot) {
  auto r = executor_->Execute(ScanPlan("users"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, RejectsUnknownTable) {
  auto r = executor_->Execute(CountPlan(ScanPlan("nope")));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, RejectsUnknownJoinKey) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "bogus"));
  auto r = executor_->Execute(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, RejectsPrivateTableNotInPlan) {
  auto plan = CountPlan(ScanPlan("users"));
  ExecOptions opts;
  opts.private_table = "clicks";
  auto r = executor_->Execute(plan, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, RejectsPrivateSelfJoin) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("users"), "uid", "uid"));
  ExecOptions opts;
  opts.private_table = "users";
  auto r = executor_->Execute(plan, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(ExecutorTest, RejectsIncludeAndExcludeTogether) {
  auto plan = CountPlan(ScanPlan("users"));
  std::vector<size_t> v{0};
  ExecOptions opts;
  opts.private_table = "users";
  opts.include_rows = &v;
  opts.exclude_rows = &v;
  auto r = executor_->Execute(plan, opts);
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, ScanCacheHitsOnRepeatedRuns) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"));
  ExecOptions opts;
  opts.private_table = "users";
  auto before = ctx_.metrics().Snapshot();
  ASSERT_TRUE(executor_->Execute(plan, opts).ok());
  ASSERT_TRUE(executor_->Execute(plan, opts).ok());
  auto delta = ctx_.metrics().Snapshot() - before;
  EXPECT_GE(delta.cache_hits, 1u);  // clicks scan cached across runs
}

TEST_F(ExecutorTest, CacheNeverAliasesRecreatedTable) {
  // Regression: cache keys must survive a table being destroyed and a new
  // one (same name, same address is possible, different data) taking its
  // place in the catalog. With address-based keys the second run could hit
  // the first table's cached scan and report 5 instead of 2.
  auto plan = CountPlan(ScanPlan("clicks"));
  for (ExecEngine engine : {ExecEngine::kRowOracle, ExecEngine::kColumnar}) {
    ExecOptions opts;
    opts.engine = engine;

    auto r1 = executor_->Execute(plan, opts);
    ASSERT_TRUE(r1.ok());
    EXPECT_DOUBLE_EQ(r1.value().output, 5.0);

    // Destroy and rebuild "clicks" with different contents; same ctx,
    // same epoch, same options. The allocator is free to reuse the
    // address of the old Table.
    Schema schema = clicks_->schema();
    clicks_ = std::make_unique<Table>(
        "clicks", schema,
        std::vector<Row>{
            {Value{int64_t{200}}, Value{int64_t{1}}, Value{32.0}},
            {Value{int64_t{201}}, Value{int64_t{2}}, Value{64.0}},
        });
    catalog_["clicks"] = clicks_.get();

    auto r2 = executor_->Execute(plan, opts);
    ASSERT_TRUE(r2.ok());
    EXPECT_DOUBLE_EQ(r2.value().output, 2.0);

    // Restore the fixture's table for the next engine's iteration.
    clicks_ = std::make_unique<Table>(
        "clicks", schema,
        std::vector<Row>{
            {Value{int64_t{100}}, Value{int64_t{1}}, Value{1.5}},
            {Value{int64_t{101}}, Value{int64_t{1}}, Value{2.5}},
            {Value{int64_t{102}}, Value{int64_t{2}}, Value{4.0}},
            {Value{int64_t{103}}, Value{int64_t{3}}, Value{8.0}},
            {Value{int64_t{104}}, Value{int64_t{9}}, Value{16.0}},
        });
    catalog_["clicks"] = clicks_.get();
  }
}

TEST_F(ExecutorTest, BothEnginesAgreeOnFixture) {
  auto plan = SumPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"),
      Mul(Col("weight"), Col("age")));
  ExecOptions opts;
  opts.private_table = "users";
  opts.partitions = 2;
  opts.track_contributions = true;
  auto row = opts, col = opts;
  row.engine = ExecEngine::kRowOracle;
  col.engine = ExecEngine::kColumnar;
  auto a = executor_->Execute(plan, row);
  auto b = executor_->Execute(plan, col);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().output, b.value().output);
  EXPECT_EQ(a.value().result_rows, b.value().result_rows);
  EXPECT_EQ(a.value().partition_outputs, b.value().partition_outputs);
  EXPECT_EQ(a.value().contributions, b.value().contributions);
}

TEST_F(ExecutorTest, DeterministicOutputsAcrossRuns) {
  auto plan = SumPlan(
      JoinPlan(ScanPlan("users"), ScanPlan("clicks"), "uid", "uid_ref"),
      Col("weight"));
  ExecOptions opts;
  opts.private_table = "users";
  opts.partitions = 2;
  auto a = executor_->Execute(plan, opts);
  auto b = executor_->Execute(plan, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().partition_outputs, b.value().partition_outputs);
}

}  // namespace
}  // namespace upa::rel
