// Table's lazily-memoized metadata (column stats, columnar form) is read
// from pool threads during FLEX analysis and plan execution, so first-use
// computation must be thread-safe. These tests hammer the memoization from
// many threads at once — under TSan they'd flag any unguarded cache — and
// check the cached answers themselves.
#include "relational/table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "relational/columnar.h"

namespace upa::rel {
namespace {

Table MakeTable() {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 2000; ++i) {
    rows.push_back({Value{i % 7}, Value{static_cast<double>(i) * 0.5},
                    Value{std::string(i % 2 == 0 ? "even" : "odd")}});
  }
  return Table("t",
               Schema({{"k", ValueType::kInt},
                       {"w", ValueType::kDouble},
                       {"tag", ValueType::kString}}),
               std::move(rows));
}

TEST(TableStatsTest, StatsValues) {
  Table t = MakeTable();
  EXPECT_EQ(t.DistinctCount("k"), 7u);
  // 2000 rows over 7 residues: residues 0..4 appear 286 times, 5 and 6
  // appear 285 — ceil(2000/7) = 286.
  EXPECT_EQ(t.MaxFrequency("k"), 286u);
  EXPECT_EQ(t.DistinctCount("tag"), 2u);
  EXPECT_EQ(t.MaxFrequency("tag"), 1000u);
  EXPECT_EQ(t.DistinctCount("w"), 2000u);
  EXPECT_EQ(t.MaxFrequency("w"), 1u);
}

TEST(TableStatsTest, ConcurrentFirstUseIsSafeAndConsistent) {
  // Fresh table per iteration so every round races the *first* computation,
  // not a warm cache.
  for (int round = 0; round < 8; ++round) {
    Table t = MakeTable();
    constexpr int kThreads = 8;
    std::vector<size_t> max_freq(kThreads), distinct(kThreads);
    std::vector<std::shared_ptr<const ColumnarTable>> columnar(kThreads);

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        // Interleave all three memoized entry points.
        max_freq[w] = t.MaxFrequency(w % 2 == 0 ? "k" : "tag");
        columnar[w] = t.Columnar();
        distinct[w] = t.DistinctCount(w % 2 == 0 ? "k" : "tag");
      });
    }
    for (std::thread& w : workers) w.join();

    for (int w = 0; w < kThreads; ++w) {
      EXPECT_EQ(max_freq[w], w % 2 == 0 ? 286u : 1000u);
      EXPECT_EQ(distinct[w], w % 2 == 0 ? 7u : 2u);
      ASSERT_NE(columnar[w], nullptr);
      // Memoization must converge on ONE columnar instance.
      EXPECT_EQ(columnar[w].get(), columnar[0].get());
    }
    EXPECT_EQ(columnar[0]->num_rows(), 2000u);
  }
}

TEST(TableStatsTest, NumericStatsCarryMinMaxAndHistogram) {
  Table t = MakeTable();
  const ColumnStats k = t.Stats("k");
  EXPECT_TRUE(k.numeric);
  EXPECT_DOUBLE_EQ(k.min, 0.0);
  EXPECT_DOUBLE_EQ(k.max, 6.0);
  EXPECT_EQ(k.distinct, 7u);
  ASSERT_EQ(k.histogram.size(), ColumnStats::kHistogramBuckets);
  size_t total = 0;
  for (size_t c : k.histogram) total += c;
  EXPECT_EQ(total, 2000u);

  const ColumnStats w = t.Stats("w");
  EXPECT_TRUE(w.numeric);
  EXPECT_DOUBLE_EQ(w.min, 0.0);
  EXPECT_DOUBLE_EQ(w.max, 999.5);

  // Strings carry frequency stats but no numeric histogram.
  const ColumnStats tag = t.Stats("tag");
  EXPECT_FALSE(tag.numeric);
  EXPECT_TRUE(tag.histogram.empty());
}

TEST(TableStatsTest, FractionBelowInterpolates) {
  Table t = MakeTable();
  const ColumnStats k = t.Stats("k");
  EXPECT_DOUBLE_EQ(k.FractionBelow(0.0), 0.0);    // bound at min
  EXPECT_DOUBLE_EQ(k.FractionBelow(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(k.FractionBelow(7.0), 1.0);    // bound past max
  // k = i % 7 over 2000 rows: 858 rows (286 each of 0,1,2) lie strictly
  // below 3.0, and 3.0 lands exactly on a bucket edge — no interpolation.
  EXPECT_DOUBLE_EQ(k.FractionBelow(3.0), 858.0 / 2000.0);

  // w = i * 0.5 is uniform on [0, 999.5]: the midpoint splits ~half.
  const ColumnStats w = t.Stats("w");
  EXPECT_NEAR(w.FractionBelow(999.5 / 2), 0.5, 0.01);
  // Monotone in the bound.
  double prev = 0.0;
  for (double b = 0.0; b <= 1000.0; b += 73.0) {
    const double f = w.FractionBelow(b);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(TableStatsTest, CopyCarriesCachesAndUid) {
  Table t = MakeTable();
  auto built = t.Columnar();
  size_t mf = t.MaxFrequency("k");

  Table copy(t);
  EXPECT_EQ(copy.uid(), t.uid());  // same immutable data → same identity
  EXPECT_EQ(copy.Columnar().get(), built.get());
  EXPECT_EQ(copy.MaxFrequency("k"), mf);

  Table moved(std::move(copy));
  EXPECT_EQ(moved.uid(), t.uid());
  EXPECT_EQ(moved.Columnar().get(), built.get());
}

}  // namespace
}  // namespace upa::rel
