#include "dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace upa::dp {

Status PrivacyAccountant::Charge(const std::string& dataset_id,
                                 double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  std::lock_guard lock(mu_);
  Ledger& ledger = ledgers_[dataset_id];
  if (ledger.spent + epsilon > total_budget_ + 1e-12) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "budget exhausted for '%s': spent=%.4f + eps=%.4f > %.4f",
                  dataset_id.c_str(), ledger.spent, epsilon, total_budget_);
    return Status::OutOfRange(buf);
  }
  ledger.spent += epsilon;
  ledger.charged += epsilon;
  return Status::Ok();
}

Status PrivacyAccountant::Refund(const std::string& dataset_id,
                                 double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("refund epsilon must be positive");
  }
  std::lock_guard lock(mu_);
  auto it = ledgers_.find(dataset_id);
  if (it == ledgers_.end()) {
    return Status::FailedPrecondition("refund for '" + dataset_id +
                                      "': nothing was charged");
  }
  // Bounded by spent: refunding more than was charged must not mint
  // budget beyond the configured total. The ledger records the amount
  // actually returned so conservation still balances after a clamp.
  double actual = std::min(epsilon, it->second.spent);
  it->second.spent -= actual;
  it->second.refunded += actual;
  return Status::Ok();
}

double PrivacyAccountant::Spent(const std::string& dataset_id) const {
  std::lock_guard lock(mu_);
  auto it = ledgers_.find(dataset_id);
  return it == ledgers_.end() ? 0.0 : it->second.spent;
}

double PrivacyAccountant::Remaining(const std::string& dataset_id) const {
  return std::max(0.0, total_budget_ - Spent(dataset_id));
}

BudgetCheckpoint PrivacyAccountant::Checkpoint(
    const std::string& dataset_id) const {
  std::lock_guard lock(mu_);
  auto it = ledgers_.find(dataset_id);
  if (it == ledgers_.end()) return {};
  return {it->second.spent, it->second.charged, it->second.refunded};
}

Status PrivacyAccountant::VerifyConservation() const {
  std::lock_guard lock(mu_);
  for (const auto& [dataset, ledger] : ledgers_) {
    char buf[224];
    // Tolerance absorbs float non-associativity between the running
    // balance and the two cumulative sums, nothing more.
    if (std::fabs(ledger.spent - (ledger.charged - ledger.refunded)) > 1e-9) {
      std::snprintf(buf, sizeof(buf),
                    "budget conservation violated for '%s': spent=%.12f != "
                    "charged=%.12f - refunded=%.12f",
                    dataset.c_str(), ledger.spent, ledger.charged,
                    ledger.refunded);
      return Status::Internal(buf);
    }
    if (ledger.spent < 0.0 || ledger.spent > total_budget_ + 1e-9) {
      std::snprintf(buf, sizeof(buf),
                    "budget balance out of range for '%s': spent=%.12f "
                    "budget=%.12f",
                    dataset.c_str(), ledger.spent, total_budget_);
      return Status::Internal(buf);
    }
    if (ledger.refunded > ledger.charged + 1e-9) {
      std::snprintf(buf, sizeof(buf),
                    "refunds exceed charges for '%s': refunded=%.12f > "
                    "charged=%.12f",
                    dataset.c_str(), ledger.refunded, ledger.charged);
      return Status::Internal(buf);
    }
  }
  return Status::Ok();
}

void PrivacyAccountant::RestoreLedger(const std::string& dataset_id,
                                      double charged_total,
                                      double refunded_total) {
  std::lock_guard lock(mu_);
  Ledger& ledger = ledgers_[dataset_id];
  ledger.charged = charged_total;
  ledger.refunded = refunded_total;
  ledger.spent = charged_total - refunded_total;
}

}  // namespace upa::dp
