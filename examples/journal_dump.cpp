// Prints a per-dataset journal file record by record, one line each:
//
//   usage: journal_dump <journal-file> [...]
//
//   open     qid=0 dataset=ds-1
//   charge   qid=3 eps=0.100000
//   release  qid=3 eps=0.100000 outputs=4 nonce=0xdeadbeef seq=2 blob=96B
//   refund   qid=4 eps=0.100000
//   expire   nonce=0xdeadbeef seq=1
//
// The exactly-once drill greps this output to assert that every
// idempotency key was released exactly once across crash + replay — the
// journal is append-only, so the dump IS the full release history.
#include <cstdio>
#include <cstdlib>

#include "service/journal.h"

using namespace upa;

namespace {

const char* TypeName(service::JournalRecord::Type type) {
  switch (type) {
    case service::JournalRecord::Type::kOpen: return "open";
    case service::JournalRecord::Type::kCharge: return "charge";
    case service::JournalRecord::Type::kRelease: return "release";
    case service::JournalRecord::Type::kRefund: return "refund";
    case service::JournalRecord::Type::kEpochBump: return "epoch_bump";
    case service::JournalRecord::Type::kExpire: return "expire";
  }
  return "unknown";
}

int DumpOne(const char* path) {
  bool torn = false;
  uint64_t intact = 0;
  auto records = service::Journal::ReadAll(path, &torn, &intact);
  if (!records.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 records.status().ToString().c_str());
    return 1;
  }
  std::printf("# %s: %zu records, %llu intact bytes%s\n", path,
              records.value().size(),
              static_cast<unsigned long long>(intact),
              torn ? ", TORN TAIL" : "");
  for (const service::JournalRecord& rec : records.value()) {
    std::printf("%-10s qid=%llu", TypeName(rec.type),
                static_cast<unsigned long long>(rec.qid));
    switch (rec.type) {
      case service::JournalRecord::Type::kOpen:
        std::printf(" dataset=%s", rec.dataset_id.c_str());
        break;
      case service::JournalRecord::Type::kEpochBump:
        std::printf(" epoch=%llu",
                    static_cast<unsigned long long>(rec.epoch));
        break;
      case service::JournalRecord::Type::kExpire:
        std::printf(" nonce=0x%llx seq=%llu",
                    static_cast<unsigned long long>(rec.nonce),
                    static_cast<unsigned long long>(rec.key_seq));
        break;
      default:
        std::printf(" eps=%f", rec.epsilon);
        break;
    }
    if (rec.type == service::JournalRecord::Type::kRelease) {
      std::printf(" outputs=%zu", rec.partition_outputs.size());
      if (rec.nonce != 0) {
        std::printf(" nonce=0x%llx seq=%llu blob=%zuB",
                    static_cast<unsigned long long>(rec.nonce),
                    static_cast<unsigned long long>(rec.key_seq),
                    rec.response_blob.size());
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <journal-file> [...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= DumpOne(argv[i]);
  return rc;
}
