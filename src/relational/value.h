// Value: the dynamic cell type of the relational layer (SparkSQL subset).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/status.h"

namespace upa::rel {

using Value = std::variant<int64_t, double, std::string>;

enum class ValueType { kInt, kDouble, kString };

ValueType TypeOf(const Value& v);
std::string TypeName(ValueType t);

/// Strict accessors: abort on type mismatch (schema violations are bugs).
int64_t AsInt(const Value& v);
const std::string& AsString(const Value& v);

/// Numeric view: int64 or double. Aborts on strings.
double AsNumeric(const Value& v);

/// True if the value is int or double.
bool IsNumeric(const Value& v);

/// Render for debugging / table output.
std::string ToString(const Value& v);

/// Three-way comparison: numerics compare numerically across int/double,
/// strings lexicographically. Comparing a string with a numeric aborts.
int Compare(const Value& a, const Value& b);

/// Equality consistent with Compare (1 == 1.0).
bool ValueEquals(const Value& a, const Value& b);

/// Hash consistent with ValueEquals for values of the same type family.
struct ValueHash {
  size_t operator()(const Value& v) const;
};

struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return ValueEquals(a, b);
  }
};

}  // namespace upa::rel
