file(REMOVE_RECURSE
  "CMakeFiles/upa_group_test.dir/upa_group_test.cpp.o"
  "CMakeFiles/upa_group_test.dir/upa_group_test.cpp.o.d"
  "upa_group_test"
  "upa_group_test.pdb"
  "upa_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
