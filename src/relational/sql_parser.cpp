#include "relational/sql_parser.h"

#include <cctype>
#include <optional>
#include <utility>
#include <vector>

namespace upa::rel {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // unquoted word (may be a keyword; matched case-insensitively)
  kInt,
  kDouble,
  kString,   // 'quoted'
  kSymbol,   // operators and punctuation, text holds the lexeme
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier / symbol lexeme / string body
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t pos = 0;       // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = sql_.size();
    while (i < n) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < n && (std::isalnum(static_cast<unsigned char>(sql_[i])) ||
                         sql_[i] == '_')) {
          ++i;
        }
        out.push_back({TokKind::kIdent, sql_.substr(start, i - start), 0, 0.0,
                       start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        bool is_double = false;
        while (i < n && (std::isdigit(static_cast<unsigned char>(sql_[i])) ||
                         sql_[i] == '.')) {
          if (sql_[i] == '.') is_double = true;
          ++i;
        }
        std::string num = sql_.substr(start, i - start);
        Token t;
        t.pos = start;
        if (is_double) {
          t.kind = TokKind::kDouble;
          t.double_value = std::strtod(num.c_str(), nullptr);
        } else {
          t.kind = TokKind::kInt;
          t.int_value = std::strtoll(num.c_str(), nullptr, 10);
        }
        out.push_back(std::move(t));
        continue;
      }
      if (c == '\'') {
        ++i;
        std::string body;
        while (i < n && sql_[i] != '\'') body.push_back(sql_[i++]);
        if (i >= n) {
          return Status::InvalidArgument("unterminated string literal at " +
                                         std::to_string(start));
        }
        ++i;  // closing quote
        out.push_back({TokKind::kString, std::move(body), 0, 0.0, start});
        continue;
      }
      // Multi-char operators first.
      auto two = sql_.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        out.push_back({TokKind::kSymbol, two, 0, 0.0, start});
        i += 2;
        continue;
      }
      if (std::string("()=<>*+-/,").find(c) != std::string::npos) {
        out.push_back({TokKind::kSymbol, std::string(1, c), 0, 0.0, start});
        ++i;
        continue;
      }
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(i));
    }
    out.push_back({TokKind::kEnd, "", 0, 0.0, n});
    return out;
  }

 private:
  const std::string& sql_;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// The synthetic column name of hoisted aggregate slot `i` ('$' cannot
/// appear in a lexed identifier, so these never collide with user names).
std::string AggRefName(size_t i) { return "$agg" + std::to_string(i); }

bool IsAggRefName(const std::string& name) {
  return name.rfind("$agg", 0) == 0;
}

/// Collects every column name referenced by `e` into `out`.
void CollectColumns(const ExprPtr& e, std::vector<std::string>& out) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case Expr::Kind::kColumn:
      out.push_back(e->column_name());
      return;
    case Expr::Kind::kLiteral:
      return;
    case Expr::Kind::kBinary:
      CollectColumns(e->lhs(), out);
      CollectColumns(e->rhs(), out);
      return;
    case Expr::Kind::kNot:
    case Expr::Kind::kInSet:
      CollectColumns(e->lhs(), out);
      return;
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Where the expression being parsed sits, for aggregate-call legality.
enum class AggCtx {
  kForbidden,  // WHERE / join conditions
  kAllowed,    // select items, HAVING, ORDER BY
  kInside,     // the argument of an aggregate call
};

class Parser {
 public:
  Parser(const std::string& sql, std::vector<Token> tokens)
      : sql_(sql), tokens_(std::move(tokens)) {}

  Result<SqlSelect> ParseSelect() {
    SqlSelect out;
    UPA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    // Select list (aggregates hoisted into out.aggs as they are parsed).
    slots_ = &out.aggs;
    do {
      Result<SelectItem> item = ParseItem();
      if (!item.ok()) return item.status();
      out.items.push_back(std::move(item).value());
    } while (AcceptSymbol(","));

    UPA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    std::string table;
    UPA_RETURN_IF_ERROR(ExpectIdent(table));
    PlanPtr rel = ScanPlan(table);

    while (AcceptKeyword("JOIN")) {
      std::string right;
      UPA_RETURN_IF_ERROR(ExpectIdent(right));
      UPA_RETURN_IF_ERROR(ExpectKeyword("ON"));
      std::string lk, rk;
      UPA_RETURN_IF_ERROR(ExpectIdent(lk));
      UPA_RETURN_IF_ERROR(ExpectSymbol("="));
      UPA_RETURN_IF_ERROR(ExpectIdent(rk));
      rel = JoinPlan(rel, ScanPlan(right), lk, rk);
    }

    if (AcceptKeyword("WHERE")) {
      agg_ctx_ = AggCtx::kForbidden;
      Result<ExprPtr> pred = ParseExpr();
      agg_ctx_ = AggCtx::kAllowed;
      if (!pred.ok()) return pred.status();
      rel = FilterPlan(rel, pred.value());
    }
    out.relation = std::move(rel);

    if (AcceptKeyword("GROUP")) {
      UPA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        std::string key;
        UPA_RETURN_IF_ERROR(ExpectIdent(key));
        out.group_by.push_back(std::move(key));
      } while (AcceptSymbol(","));
    }

    if (IsKeyword(Peek(), "HAVING") && out.group_by.empty()) {
      return Err("HAVING requires GROUP BY");
    }
    if (AcceptKeyword("HAVING")) {
      Result<ExprPtr> having = ParseExpr();
      if (!having.ok()) return having.status();
      out.having = having.value();
    }

    if (AcceptKeyword("ORDER")) {
      UPA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        Result<OrderKey> key = ParseOrderKey(out);
        if (!key.ok()) return key.status();
        out.order_by.push_back(std::move(key).value());
      } while (AcceptSymbol(","));
    }

    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokKind::kInt) {
        return Err("LIMIT requires a non-negative integer literal");
      }
      out.limit = Advance().int_value;
    }

    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after query");
    }
    UPA_RETURN_IF_ERROR(ValidateReferences(out));
    return out;
  }

 private:
  // -- token helpers --------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool AcceptKeyword(const std::string& kw) {
    if (IsKeyword(Peek(), kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& s) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == s) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Err("expected " + kw);
    return Status::Ok();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) return Err("expected '" + s + "'");
    return Status::Ok();
  }
  Status ExpectIdent(std::string& out) {
    if (Peek().kind != TokKind::kIdent) return Err("expected identifier");
    out = Advance().text;
    return Status::Ok();
  }
  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        what + " near position " + std::to_string(Peek().pos) +
        (Peek().text.empty() ? "" : " ('" + Peek().text + "')"));
  }

  static bool IsKeyword(const Token& t, const std::string& kw) {
    return t.kind == TokKind::kIdent && Upper(t.text) == kw;
  }

  // -- statement parts ------------------------------------------------------

  Result<SelectItem> ParseItem() {
    const size_t start = Peek().pos;
    Result<ExprPtr> expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    const size_t end = Peek().pos;
    SelectItem item;
    item.expr = expr.value();
    item.name = TrimmedSource(start, end);
    if (AcceptKeyword("AS")) {
      UPA_RETURN_IF_ERROR(ExpectIdent(item.alias));
      item.name = item.alias;
    }
    return item;
  }

  Result<OrderKey> ParseOrderKey(const SqlSelect& stmt) {
    Result<ExprPtr> expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    OrderKey key;
    key.expr = expr.value();
    // A bare integer is a 1-based select-list ordinal; a bare column that
    // names an alias refers to that item (a GROUP BY column of the same
    // name wins — both denote the same output there anyway).
    if (key.expr->kind() == Expr::Kind::kLiteral &&
        std::holds_alternative<int64_t>(key.expr->literal())) {
      int64_t ordinal = std::get<int64_t>(key.expr->literal());
      if (ordinal < 1 || static_cast<size_t>(ordinal) > stmt.items.size()) {
        return Status::InvalidArgument(
            "ORDER BY ordinal " + std::to_string(ordinal) +
            " is out of range (select list has " +
            std::to_string(stmt.items.size()) + " items)");
      }
      key.expr = stmt.items[static_cast<size_t>(ordinal) - 1].expr;
    } else if (key.expr->kind() == Expr::Kind::kColumn) {
      const std::string& name = key.expr->column_name();
      bool is_group_key = false;
      for (const std::string& g : stmt.group_by) {
        if (g == name) is_group_key = true;
      }
      if (!is_group_key) {
        for (const SelectItem& item : stmt.items) {
          if (!item.alias.empty() && item.alias == name) {
            key.expr = item.expr;
            break;
          }
        }
      }
    }
    if (AcceptKeyword("DESC")) {
      key.desc = true;
    } else {
      AcceptKeyword("ASC");
    }
    return key;
  }

  /// Enforces the single-block rule: outside WHERE/ON, a column reference
  /// is only meaningful if it is a GROUP BY key (or a hoisted "$aggN").
  Status ValidateReferences(const SqlSelect& stmt) const {
    auto check = [&](const ExprPtr& e, const char* clause) -> Status {
      std::vector<std::string> refs;
      CollectColumns(e, refs);
      for (const std::string& name : refs) {
        if (IsAggRefName(name)) continue;
        bool grouped = false;
        for (const std::string& g : stmt.group_by) {
          if (g == name) grouped = true;
        }
        if (!grouped) {
          return Status::InvalidArgument(
              std::string("column '") + name + "' in " + clause +
              " must appear in GROUP BY or inside an aggregate");
        }
      }
      return Status::Ok();
    };
    for (const SelectItem& item : stmt.items) {
      UPA_RETURN_IF_ERROR(check(item.expr, "the select list"));
    }
    UPA_RETURN_IF_ERROR(check(stmt.having, "HAVING"));
    for (const OrderKey& key : stmt.order_by) {
      UPA_RETURN_IF_ERROR(check(key.expr, "ORDER BY"));
    }
    return Status::Ok();
  }

  std::string TrimmedSource(size_t begin, size_t end) const {
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(sql_[end - 1]))) {
      --end;
    }
    while (begin < end && std::isspace(static_cast<unsigned char>(sql_[begin]))) {
      ++begin;
    }
    return sql_.substr(begin, end - begin);
  }

  // -- expressions ----------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    while (AcceptKeyword("OR")) {
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = Or(e, rhs.value());
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    while (AcceptKeyword("AND")) {
      Result<ExprPtr> rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      e = And(e, rhs.value());
    }
    return e;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      Result<ExprPtr> inner = ParseNot();
      if (!inner.ok()) return inner;
      return Not(inner.value());
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    Result<ExprPtr> lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();

    if (AcceptKeyword("IN")) {
      UPA_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> set;
      for (;;) {
        std::optional<Value> lit = AcceptLiteral();
        if (!lit.has_value()) return Err("expected literal in IN list");
        set.push_back(std::move(*lit));
        if (AcceptSymbol(",")) continue;
        break;
      }
      UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return In(e, std::move(set));
    }

    for (auto [sym, op] :
         {std::pair{"=", BinOp::kEq}, std::pair{"!=", BinOp::kNe},
          std::pair{"<>", BinOp::kNe}, std::pair{"<=", BinOp::kLe},
          std::pair{">=", BinOp::kGe}, std::pair{"<", BinOp::kLt},
          std::pair{">", BinOp::kGt}}) {
      if (AcceptSymbol(sym)) {
        Result<ExprPtr> rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return Expr::Binary(op, e, rhs.value());
      }
    }
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    Result<ExprPtr> lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    for (;;) {
      if (AcceptSymbol("+")) {
        Result<ExprPtr> rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Add(e, rhs.value());
      } else if (AcceptSymbol("-")) {
        Result<ExprPtr> rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Sub(e, rhs.value());
      } else {
        return e;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    Result<ExprPtr> lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    for (;;) {
      if (AcceptSymbol("*")) {
        Result<ExprPtr> rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        e = Mul(e, rhs.value());
      } else if (AcceptSymbol("/")) {
        Result<ExprPtr> rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        e = Div(e, rhs.value());
      } else {
        return e;
      }
    }
  }

  std::optional<Value> AcceptLiteral() {
    const Token& t = Peek();
    if (t.kind == TokKind::kInt) {
      Advance();
      return Value{t.int_value};
    }
    if (t.kind == TokKind::kDouble) {
      Advance();
      return Value{t.double_value};
    }
    if (t.kind == TokKind::kString) {
      Advance();
      return Value{t.text};
    }
    return std::nullopt;
  }

  static std::optional<AggKind> AggKeyword(const std::string& up) {
    if (up == "COUNT") return AggKind::kCount;
    if (up == "SUM") return AggKind::kSum;
    if (up == "AVG") return AggKind::kAvg;
    if (up == "MIN") return AggKind::kMin;
    if (up == "MAX") return AggKind::kMax;
    return std::nullopt;
  }

  /// Parses an aggregate call (keyword already verified; its '(' is the
  /// next token), hoists it into the statement's slot list (deduplicating
  /// structurally identical calls) and returns the "$aggN" reference.
  Result<ExprPtr> ParseAggCall(AggKind kind) {
    Advance();  // the aggregate keyword
    UPA_RETURN_IF_ERROR(ExpectSymbol("("));
    AggSlot slot;
    slot.kind = kind;
    if (kind == AggKind::kCount) {
      UPA_RETURN_IF_ERROR(ExpectSymbol("*"));
      UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      agg_ctx_ = AggCtx::kInside;
      Result<ExprPtr> inner = ParseExpr();
      agg_ctx_ = AggCtx::kAllowed;
      if (!inner.ok()) return inner;
      UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
      slot.expr = inner.value();
    }
    const uint64_t fp = ExprFingerprint(slot.expr);
    for (size_t i = 0; i < slots_->size(); ++i) {
      const AggSlot& have = (*slots_)[i];
      if (have.kind == kind && ExprFingerprint(have.expr) == fp) {
        return Col(AggRefName(i));
      }
    }
    slots_->push_back(std::move(slot));
    return Col(AggRefName(slots_->size() - 1));
  }

  Result<ExprPtr> ParsePrimary() {
    if (AcceptSymbol("(")) {
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (std::optional<Value> lit = AcceptLiteral()) {
      return Expr::Literal(std::move(*lit));
    }
    if (Peek().kind == TokKind::kIdent) {
      std::string up = Upper(Peek().text);
      // An aggregate keyword followed by '(' is an aggregate call; without
      // the '(' it stays an ordinary column reference (columns named
      // "min" etc. remain usable).
      if (std::optional<AggKind> kind = AggKeyword(up)) {
        if (Peek(1).kind == TokKind::kSymbol && Peek(1).text == "(") {
          if (agg_ctx_ == AggCtx::kInside) {
            return Err("nested aggregate calls are not allowed");
          }
          if (agg_ctx_ == AggCtx::kForbidden) {
            return Err(
                "aggregate calls are only allowed in the select list, "
                "HAVING and ORDER BY");
          }
          return ParseAggCall(*kind);
        }
      }
      // Reject keywords in value position for clearer errors.
      if (up == "AND" || up == "OR" || up == "NOT" || up == "WHERE" ||
          up == "JOIN" || up == "ON" || up == "FROM" || up == "IN" ||
          up == "SELECT" || up == "GROUP" || up == "BY" || up == "HAVING" ||
          up == "ORDER" || up == "LIMIT" || up == "AS" || up == "ASC" ||
          up == "DESC") {
        return Err("expected a value or column");
      }
      return Col(Advance().text);
    }
    return Err("expected a value, column or parenthesized expression");
  }

  const std::string& sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<AggSlot>* slots_ = nullptr;
  AggCtx agg_ctx_ = AggCtx::kAllowed;
};

}  // namespace

PlanPtr PlanForAgg(PlanPtr relation, const AggSlot& slot) {
  switch (slot.kind) {
    case AggKind::kCount:
      return CountPlan(std::move(relation));
    case AggKind::kSum:
      return SumPlan(std::move(relation), slot.expr);
    case AggKind::kAvg:
      return AvgPlan(std::move(relation), slot.expr);
    case AggKind::kMin:
      return MinPlan(std::move(relation), slot.expr);
    case AggKind::kMax:
      return MaxPlan(std::move(relation), slot.expr);
  }
  UPA_CHECK_MSG(false, "unknown aggregate kind");
  return nullptr;
}

Result<SqlSelect> ParseSqlSelect(const std::string& sql) {
  Lexer lexer(sql);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(sql, std::move(tokens).value());
  return parser.ParseSelect();
}

Result<PlanPtr> ParseSql(const std::string& sql) {
  Result<SqlSelect> stmt = ParseSqlSelect(sql);
  if (!stmt.ok()) return stmt.status();
  const SqlSelect& s = stmt.value();
  const bool scalar_agg =
      s.items.size() == 1 && s.aggs.size() == 1 && s.group_by.empty() &&
      s.having == nullptr && s.order_by.empty() && s.limit < 0 &&
      s.items[0].expr->kind() == Expr::Kind::kColumn &&
      s.items[0].expr->column_name() == AggRefName(0);
  if (!scalar_agg) {
    return Status::InvalidArgument(
        "statement is not a single bare aggregate; run it through "
        "ParseSqlSelect + ExecuteSelect");
  }
  return PlanForAgg(s.relation, s.aggs[0]);
}

}  // namespace upa::rel
