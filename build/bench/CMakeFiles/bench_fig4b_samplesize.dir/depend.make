# Empty dependencies file for bench_fig4b_samplesize.
# This may be replaced when dependencies are built.
