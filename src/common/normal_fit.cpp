#include "common/normal_fit.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/status.h"

namespace upa {

NormalParams FitNormalMle(std::span<const double> xs) {
  NormalParams p;
  if (xs.empty()) return p;
  p.mean = Mean(xs);
  p.stddev = StdDevPopulation(xs);  // MLE uses 1/N
  return p;
}

double StandardNormalQuantile(double p) {
  UPA_CHECK_MSG(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");

  // Peter Acklam's rational approximation to the inverse normal CDF.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley refinement against erfc for extra precision.
  double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double NormalQuantile(const NormalParams& params, double p) {
  return params.mean + params.stddev * StandardNormalQuantile(p);
}

double Interval::Clamp(double x) const { return std::clamp(x, lo, hi); }

Interval NormalPercentileInterval(std::span<const double> xs, double lo_pct,
                                  double hi_pct) {
  // Validate at the API boundary: percentiles at or beyond the support
  // would otherwise crash deep inside StandardNormalQuantile with an
  // unhelpful "(0,1)" message (or produce ±inf bounds).
  UPA_CHECK_MSG(lo_pct > 0.0 && hi_pct < 100.0,
                "percentiles must lie strictly inside (0, 100)");
  UPA_CHECK_MSG(lo_pct < hi_pct, "lo percentile must be below hi percentile");
  NormalParams fit = FitNormalMle(xs);
  Interval iv;
  iv.lo = NormalQuantile(fit, lo_pct / 100.0);
  iv.hi = NormalQuantile(fit, hi_pct / 100.0);
  if (iv.lo > iv.hi) std::swap(iv.lo, iv.hi);
  return iv;
}

}  // namespace upa
