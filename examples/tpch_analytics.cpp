// Private TPC-H analytics: runs all nine evaluated queries (Table II)
// through the full UPA pipeline and reports released vs. true outputs,
// inferred sensitivities, and what FLEX would have done instead.
#include <cstdio>

#include "common/table_printer.h"
#include "queries/suite.h"
#include "upa/runner.h"

int main() {
  using namespace upa;

  queries::SuiteConfig cfg;
  cfg.tpch.num_orders = 2000;
  cfg.ml.num_points = 10000;
  queries::QuerySuite suite(cfg);

  core::UpaConfig upa_cfg;
  upa_cfg.sample_n = 1000;
  upa_cfg.epsilon = 0.1;  // the paper's evaluation budget
  core::UpaRunner runner(upa_cfg);

  TablePrinter table({"Query", "true output", "released (eps=0.1)",
                      "rel. error", "inferred sens", "FLEX would use"});
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    double truth = suite.RunNative(name);
    auto result = runner.Run(suite.MakeInstance(name), /*seed=*/7);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    auto flex = suite.RunFlex(name);
    double released = result.value().released_output;
    double rel_err = truth != 0.0 ? (released - truth) / truth : 0.0;
    table.AddRow({name, TablePrinter::FormatDouble(truth, 2),
                  TablePrinter::FormatDouble(released, 2),
                  TablePrinter::FormatPercent(rel_err, 2),
                  TablePrinter::FormatDouble(result.value().local_sensitivity, 4),
                  flex.supported
                      ? TablePrinter::FormatDouble(flex.local_sensitivity, 1) +
                            " (static)"
                      : "cannot analyze"});
  }
  table.Print("Private TPC-H + ML analytics under UPA (iDP, eps=0.1)");
  std::printf(
      "\nEvery sensitivity above was inferred automatically from the query's\n"
      "actual execution — no expert-provided bounds, no query rewriting.\n");
  return 0;
}
