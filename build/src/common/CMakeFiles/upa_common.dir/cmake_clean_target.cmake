file(REMOVE_RECURSE
  "libupa_common.a"
)
