// ExactSum: correctly-rounded summation must be order-invariant at the bit
// level — the property both relational engines lean on for determinism.
#include "common/exact_sum.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace upa {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

TEST(ExactSumTest, EmptyRoundsToZero) {
  ExactSum s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Round(), 0.0);
}

TEST(ExactSumTest, CancellationExact) {
  // Naive left-to-right summation returns 0.0 here; the exact sum is 1.0.
  ExactSum s;
  s.Add(1e100);
  s.Add(1.0);
  s.Add(-1e100);
  EXPECT_EQ(s.Round(), 1.0);
}

TEST(ExactSumTest, ManyTenthsRoundCorrectly) {
  // fsum(0.1 × 10^6) == 100000.0 exactly (0.1's error cancels in the exact
  // accumulation); a naive running sum drifts off by ~1e-6.
  ExactSum s;
  for (int i = 0; i < 1000000; ++i) s.Add(0.1);
  EXPECT_EQ(s.Round(), 100000.0);
  double naive = 0.0;
  for (int i = 0; i < 1000000; ++i) naive += 0.1;
  EXPECT_NE(naive, 100000.0);  // the property the oracle cannot get naively
}

TEST(ExactSumTest, OrderInvariantBitwise) {
  Rng rng = Rng::ForStream(11, "exact_sum/order");
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    // Wildly mixed magnitudes, signs, and exact-cancellation pairs.
    double v = rng.Normal(0.0, 1.0) * std::pow(10.0, rng.UniformInt(-18, 18));
    values.push_back(v);
    if (rng.Bernoulli(0.3)) values.push_back(-v);
  }

  ExactSum reference;
  for (double v : values) reference.Add(v);
  const uint64_t want = Bits(reference.Round());

  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(values);
    ExactSum s;
    for (double v : values) s.Add(v);
    EXPECT_EQ(Bits(s.Round()), want) << "trial " << trial;
  }
}

TEST(ExactSumTest, MergeEquivalentToSequentialAdds) {
  Rng rng = Rng::ForStream(11, "exact_sum/merge");
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.Normal(0.0, 1.0) *
                     std::pow(2.0, rng.UniformInt(-40, 40)));
  }

  ExactSum sequential;
  for (double v : values) sequential.Add(v);

  // Chunked accumulation merged in reverse chunk order — the shape the
  // partition-parallel engines produce.
  std::vector<ExactSum> chunks(7);
  for (size_t i = 0; i < values.size(); ++i) {
    chunks[i % chunks.size()].Add(values[i]);
  }
  ExactSum merged;
  for (size_t c = chunks.size(); c > 0; --c) merged.Merge(chunks[c - 1]);

  EXPECT_EQ(Bits(merged.Round()), Bits(sequential.Round()));
}

TEST(ExactSumTest, ResetClears) {
  ExactSum s;
  s.Add(3.5);
  s.Reset();
  EXPECT_TRUE(s.Empty());
  s.Add(2.0);
  EXPECT_EQ(s.Round(), 2.0);
}

}  // namespace
}  // namespace upa
