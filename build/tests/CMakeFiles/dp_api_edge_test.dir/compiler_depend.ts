# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dp_api_edge_test.
