#include "dp/accountant.h"

#include <algorithm>
#include <cstdio>

namespace upa::dp {

Status PrivacyAccountant::Charge(const std::string& dataset_id,
                                 double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  std::lock_guard lock(mu_);
  double& spent = spent_[dataset_id];
  if (spent + epsilon > total_budget_ + 1e-12) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "budget exhausted for '%s': spent=%.4f + eps=%.4f > %.4f",
                  dataset_id.c_str(), spent, epsilon, total_budget_);
    return Status::OutOfRange(buf);
  }
  spent += epsilon;
  return Status::Ok();
}

Status PrivacyAccountant::Refund(const std::string& dataset_id,
                                 double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("refund epsilon must be positive");
  }
  std::lock_guard lock(mu_);
  auto it = spent_.find(dataset_id);
  if (it == spent_.end()) {
    return Status::FailedPrecondition("refund for '" + dataset_id +
                                      "': nothing was charged");
  }
  // Bounded by spent: refunding more than was charged must not mint
  // budget beyond the configured total.
  it->second = std::max(0.0, it->second - epsilon);
  return Status::Ok();
}

double PrivacyAccountant::Spent(const std::string& dataset_id) const {
  std::lock_guard lock(mu_);
  auto it = spent_.find(dataset_id);
  return it == spent_.end() ? 0.0 : it->second;
}

double PrivacyAccountant::Remaining(const std::string& dataset_id) const {
  return std::max(0.0, total_budget_ - Spent(dataset_id));
}

}  // namespace upa::dp
