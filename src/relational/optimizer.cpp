#include "relational/optimizer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "common/status.h"
#include "relational/card_est.h"
#include "relational/cost_model.h"
#include "relational/fused.h"

namespace upa::rel {
namespace {

void CollectColumns(const ExprPtr& expr, std::set<std::string>& out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kColumn) {
    out.insert(expr->column_name());
    return;
  }
  CollectColumns(expr->lhs(), out);
  CollectColumns(expr->rhs(), out);
}

void SplitInto(const ExprPtr& expr, std::vector<ExprPtr>& out) {
  if (expr->kind() == Expr::Kind::kBinary && expr->op() == BinOp::kAnd) {
    SplitInto(expr->lhs(), out);
    SplitInto(expr->rhs(), out);
    return;
  }
  out.push_back(expr);
}

ExprPtr Conjoin(const std::vector<ExprPtr>& conjuncts) {
  UPA_CHECK(!conjuncts.empty());
  ExprPtr e = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) e = And(e, conjuncts[i]);
  return e;
}

/// The set of columns the relation produced by `plan` exposes.
void OutputColumns(const PlanPtr& plan, const Catalog& catalog,
                   std::set<std::string>& out) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto it = catalog.find(plan->table);
      if (it == catalog.end()) return;
      for (const auto& col : it->second->schema().columns()) {
        out.insert(col.name);
      }
      return;
    }
    case PlanKind::kFilter:
      OutputColumns(plan->left, catalog, out);
      return;
    case PlanKind::kJoin:
      OutputColumns(plan->left, catalog, out);
      OutputColumns(plan->right, catalog, out);
      return;
    case PlanKind::kAggregate:
      // An aggregate outputs a single anonymous scalar, not its child's
      // schema — it provides no columns a conjunct could reference.
      return;
  }
}

bool Covers(const std::set<std::string>& columns, const ExprPtr& conjunct) {
  std::set<std::string> needed;
  CollectColumns(conjunct, needed);
  return std::includes(columns.begin(), columns.end(), needed.begin(),
                       needed.end());
}

/// Pushes each conjunct as deep as possible into `plan`; conjuncts that
/// cannot be placed anywhere under this node are returned in `leftover`.
PlanPtr Sink(const PlanPtr& plan, const Catalog& catalog,
             std::vector<ExprPtr> conjuncts, std::vector<ExprPtr>& leftover) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      std::set<std::string> cols;
      OutputColumns(plan, catalog, cols);
      std::vector<ExprPtr> applicable;
      for (const ExprPtr& c : conjuncts) {
        if (Covers(cols, c)) {
          applicable.push_back(c);
        } else {
          leftover.push_back(c);
        }
      }
      if (applicable.empty()) return plan;
      return FilterPlan(plan, Conjoin(applicable));
    }
    case PlanKind::kFilter: {
      // Merge this node's own conjuncts into the batch and recurse; the
      // child decides what it can absorb, the rest re-forms above.
      std::vector<ExprPtr> merged = std::move(conjuncts);
      SplitInto(plan->predicate, merged);
      std::vector<ExprPtr> child_leftover;
      PlanPtr child = Sink(plan->left, catalog, std::move(merged),
                           child_leftover);
      if (child_leftover.empty()) return child;
      // Conjuncts the child couldn't host: if this filter sits under a
      // join, they may still apply above — hand them upward.
      std::vector<ExprPtr> still_here;
      std::set<std::string> cols;
      OutputColumns(plan->left, catalog, cols);
      for (const ExprPtr& c : child_leftover) {
        if (Covers(cols, c)) {
          still_here.push_back(c);
        } else {
          leftover.push_back(c);
        }
      }
      if (still_here.empty()) return child;
      return FilterPlan(child, Conjoin(still_here));
    }
    case PlanKind::kJoin: {
      std::set<std::string> left_cols, right_cols;
      OutputColumns(plan->left, catalog, left_cols);
      OutputColumns(plan->right, catalog, right_cols);
      std::set<std::string> ambiguous;
      for (const std::string& c : left_cols) {
        if (right_cols.count(c) > 0) ambiguous.insert(c);
      }
      // Conjuncts touching a column BOTH sides provide must not sink into
      // either side: bare-name resolution would silently pick whichever
      // side is offered first. They stay at this join (where both
      // candidates are in scope) or bubble further up.
      std::vector<ExprPtr> sinkable, kept;
      for (ExprPtr& c : conjuncts) {
        std::set<std::string> needed;
        CollectColumns(c, needed);
        const bool touches_ambiguous =
            std::any_of(needed.begin(), needed.end(),
                        [&](const std::string& col) {
                          return ambiguous.count(col) > 0;
                        });
        (touches_ambiguous ? kept : sinkable).push_back(std::move(c));
      }
      std::vector<ExprPtr> left_leftover, right_leftover;
      PlanPtr left = Sink(plan->left, catalog, std::move(sinkable),
                          left_leftover);
      // Conjuncts the left side rejected get offered to the right side.
      PlanPtr right =
          Sink(plan->right, catalog, std::move(left_leftover),
               right_leftover);
      auto joined = std::make_shared<PlanNode>(*plan);
      joined->left = std::move(left);
      joined->right = std::move(right);
      // Whatever neither side could host — plus the ambiguity-pinned
      // conjuncts: applies here if this join's combined schema covers it,
      // else bubbles further up.
      std::set<std::string> cols = left_cols;
      cols.insert(right_cols.begin(), right_cols.end());
      for (ExprPtr& c : right_leftover) kept.push_back(std::move(c));
      std::vector<ExprPtr> here;
      for (const ExprPtr& c : kept) {
        if (Covers(cols, c)) {
          here.push_back(c);
        } else {
          leftover.push_back(c);
        }
      }
      if (here.empty()) return joined;
      return FilterPlan(joined, Conjoin(here));
    }
    case PlanKind::kAggregate: {
      // Opaque barrier: an aggregate's output is not its child's schema,
      // so no conjunct crosses it in either direction. Incoming conjuncts
      // bubble up; the subtree beneath restarts with a fresh batch and its
      // own leftovers re-attach directly beneath the aggregate.
      for (ExprPtr& c : conjuncts) leftover.push_back(std::move(c));
      std::vector<ExprPtr> inner;
      PlanPtr child = Sink(plan->left, catalog, {}, inner);
      if (!inner.empty()) child = FilterPlan(child, Conjoin(inner));
      if (child == plan->left) return plan;
      auto node = std::make_shared<PlanNode>(*plan);
      node->left = std::move(child);
      return node;
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// LiftFilters — the inverse rewrite (benchmark/differential baseline).
// ---------------------------------------------------------------------------

PlanPtr StripFilters(const PlanPtr& plan, std::vector<ExprPtr>& collected) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return plan;
    case PlanKind::kFilter: {
      SplitInto(plan->predicate, collected);
      return StripFilters(plan->left, collected);
    }
    case PlanKind::kJoin: {
      auto node = std::make_shared<PlanNode>(*plan);
      node->left = StripFilters(plan->left, collected);
      node->right = StripFilters(plan->right, collected);
      return node;
    }
    case PlanKind::kAggregate: {
      // Aggregates are barriers for lifting too: filters beneath a nested
      // aggregate conjoin directly under it, never above.
      std::vector<ExprPtr> inner;
      PlanPtr child = StripFilters(plan->left, inner);
      if (!inner.empty()) child = FilterPlan(child, Conjoin(inner));
      auto node = std::make_shared<PlanNode>(*plan);
      node->left = std::move(child);
      return node;
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Join reordering: decompose → greedy rebuild → cost gate.
// ---------------------------------------------------------------------------

struct JoinGraph {
  struct BaseRel {
    PlanPtr plan;        // Filter*(Scan) subtree
    std::string table;   // the scanned table
  };
  struct RawEdge {
    std::string left_table, left_key;
    std::string right_table, right_key;
  };
  std::vector<BaseRel> rels;
  std::vector<RawEdge> raw_edges;
  std::vector<ExprPtr> upper;  // cross-table conjuncts lifted off the tree
};

bool ContainsJoin(const PlanPtr& plan) {
  if (plan == nullptr) return false;
  if (plan->kind == PlanKind::kJoin) return true;
  return ContainsJoin(plan->left) || ContainsJoin(plan->right);
}

/// Flattens an SPJ tree into base relations + join edges + lifted
/// cross-table conjuncts. Returns false on shapes reordering does not
/// handle (nested aggregates, unknown tables, unresolvable join keys) —
/// the caller then keeps the tree as-is.
bool DecomposeInto(const PlanPtr& plan, const Catalog& catalog,
                   JoinGraph& graph) {
  switch (plan->kind) {
    case PlanKind::kScan:
      graph.rels.push_back({plan, plan->table});
      return catalog.count(plan->table) > 0;
    case PlanKind::kFilter: {
      if (ContainsJoin(plan->left)) {
        // Cross-table filter: lift its conjuncts, reattach after reorder.
        SplitInto(plan->predicate, graph.upper);
        return DecomposeInto(plan->left, catalog, graph);
      }
      const PlanNode* p = plan.get();
      while (p->kind == PlanKind::kFilter) p = p->left.get();
      if (p->kind != PlanKind::kScan) return false;
      graph.rels.push_back({plan, p->table});
      return catalog.count(p->table) > 0;
    }
    case PlanKind::kJoin: {
      const std::string lt = OwningTable(plan->left, plan->left_key, catalog);
      const std::string rt =
          OwningTable(plan->right, plan->right_key, catalog);
      if (lt.empty() || rt.empty()) return false;
      if (!DecomposeInto(plan->left, catalog, graph)) return false;
      if (!DecomposeInto(plan->right, catalog, graph)) return false;
      graph.raw_edges.push_back({lt, plan->left_key, rt, plan->right_key});
      return true;
    }
    case PlanKind::kAggregate:
      // Nested aggregates are opaque; such trees keep their shape.
      return false;
  }
  return false;
}

/// Greedy Selinger-style reorder: start from the edge with the smallest
/// estimated join output, then repeatedly attach the connected relation
/// minimizing the estimated output of the next join. Returns nullptr when
/// the graph cannot be rebuilt (disconnected or unresolvable — both mean
/// "keep the original tree").
PlanPtr GreedyReorder(const JoinGraph& graph, const Catalog& catalog,
                      const CardinalityEstimator& est) {
  struct Edge {
    size_t a, b;
    std::string a_key, b_key;
  };
  const size_t n = graph.rels.size();
  std::map<std::string, size_t> rel_of_table;
  for (size_t i = 0; i < n; ++i) {
    // A table scanned twice makes bare-name key resolution ambiguous.
    if (!rel_of_table.emplace(graph.rels[i].table, i).second) return nullptr;
  }
  std::vector<Edge> edges;
  edges.reserve(graph.raw_edges.size());
  for (const JoinGraph::RawEdge& e : graph.raw_edges) {
    auto a = rel_of_table.find(e.left_table);
    auto b = rel_of_table.find(e.right_table);
    if (a == rel_of_table.end() || b == rel_of_table.end()) return nullptr;
    edges.push_back({a->second, b->second, e.left_key, e.right_key});
  }

  std::vector<double> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i] = est.EstimateRows(graph.rels[i].plan);
  }
  auto ndv_of = [&](size_t rel, const std::string& key) {
    auto it = catalog.find(graph.rels[rel].table);
    // A key absent from the table (a malformed plan the executor will
    // reject with a clean Status) must not abort here — estimate 0.
    return it != catalog.end() && it->second->schema().Has(key)
               ? static_cast<double>(it->second->DistinctCount(key))
               : 0.0;
  };
  auto join_out = [&](double lrows, double rrows, size_t arel,
                      const std::string& akey, size_t brel,
                      const std::string& bkey) {
    const double ndv = std::max(ndv_of(arel, akey), ndv_of(brel, bkey));
    return ndv > 0 ? lrows * rrows / ndv : lrows * rrows * 0.1;
  };

  constexpr size_t kNone = std::numeric_limits<size_t>::max();
  // Seed with the cheapest edge (deterministic: first minimum wins).
  size_t seed = kNone;
  double seed_out = std::numeric_limits<double>::infinity();
  for (size_t e = 0; e < edges.size(); ++e) {
    const double out = join_out(rows[edges[e].a], rows[edges[e].b],
                                edges[e].a, edges[e].a_key, edges[e].b,
                                edges[e].b_key);
    if (out < seed_out) {
      seed_out = out;
      seed = e;
    }
  }
  if (seed == kNone) return nullptr;

  std::vector<bool> in_tree(n, false), used(edges.size(), false);
  const Edge& e0 = edges[seed];
  // Smaller estimated side on the left (the engine probes with the larger
  // side; the build-side pass may still override with a hint).
  const bool a_left = rows[e0.a] <= rows[e0.b];
  const size_t first = a_left ? e0.a : e0.b;
  const size_t second = a_left ? e0.b : e0.a;
  PlanPtr tree = JoinPlan(graph.rels[first].plan, graph.rels[second].plan,
                          a_left ? e0.a_key : e0.b_key,
                          a_left ? e0.b_key : e0.a_key);
  in_tree[e0.a] = in_tree[e0.b] = true;
  used[seed] = true;
  double tree_rows = seed_out;
  size_t joined = 2;

  while (joined < n) {
    size_t best = kNone;
    double best_out = std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < edges.size(); ++e) {
      if (used[e]) continue;
      const bool a_in = in_tree[edges[e].a], b_in = in_tree[edges[e].b];
      if (a_in == b_in) continue;
      const size_t tree_rel = a_in ? edges[e].a : edges[e].b;
      const size_t new_rel = a_in ? edges[e].b : edges[e].a;
      const std::string& tree_key = a_in ? edges[e].a_key : edges[e].b_key;
      const std::string& new_key = a_in ? edges[e].b_key : edges[e].a_key;
      const double out = join_out(tree_rows, rows[new_rel], tree_rel,
                                  tree_key, new_rel, new_key);
      if (out < best_out) {
        best_out = out;
        best = e;
      }
    }
    if (best == kNone) return nullptr;  // disconnected join graph
    const bool a_in = in_tree[edges[best].a];
    const size_t new_rel = a_in ? edges[best].b : edges[best].a;
    tree = JoinPlan(tree, graph.rels[new_rel].plan,
                    a_in ? edges[best].a_key : edges[best].b_key,
                    a_in ? edges[best].b_key : edges[best].a_key);
    in_tree[new_rel] = true;
    used[best] = true;
    tree_rows = best_out;
    ++joined;
  }
  return tree;
}

/// Reorders the join tree of a relation subtree (no root aggregate); the
/// reordered tree is kept only when the cost model prices it cheaper.
PlanPtr ReorderJoins(const PlanPtr& plan, const Catalog& catalog,
                     const CardinalityEstimator& est) {
  JoinGraph graph;
  if (!DecomposeInto(plan, catalog, graph)) return plan;
  if (graph.rels.size() < 3) return plan;  // ≤1 join: nothing to reorder
  PlanPtr tree = GreedyReorder(graph, catalog, est);
  if (tree == nullptr) return plan;
  if (!graph.upper.empty()) tree = FilterPlan(tree, Conjoin(graph.upper));
  tree = PushDownFilters(tree, catalog);
  const CostModel cost;
  return cost.PlanCost(tree, est) < cost.PlanCost(plan, est) ? tree : plan;
}

// ---------------------------------------------------------------------------
// Conjunct ordering + build-side hints.
// ---------------------------------------------------------------------------

/// Rebuilds each Filter with its conjuncts sorted by ascending estimated
/// selectivity: the most selective conjunct runs first, so later kernel
/// passes see fewer candidate rows. Well-typed predicates are pure, so
/// order never changes the selected set.
PlanPtr OrderConjunctsPass(const PlanPtr& plan,
                           const CardinalityEstimator& est) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return plan;
    case PlanKind::kFilter: {
      PlanPtr child = OrderConjunctsPass(plan->left, est);
      std::vector<ExprPtr> conjuncts;
      SplitInto(plan->predicate, conjuncts);
      if (conjuncts.size() > 1) {
        std::vector<std::pair<double, ExprPtr>> ranked;
        ranked.reserve(conjuncts.size());
        for (const ExprPtr& c : conjuncts) {
          ranked.push_back({est.EstimateSelectivity(c, plan->left), c});
        }
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         });
        for (size_t i = 0; i < ranked.size(); ++i) {
          conjuncts[i] = ranked[i].second;
        }
      }
      return FilterPlan(std::move(child), Conjoin(conjuncts));
    }
    case PlanKind::kJoin: {
      auto node = std::make_shared<PlanNode>(*plan);
      node->left = OrderConjunctsPass(plan->left, est);
      node->right = OrderConjunctsPass(plan->right, est);
      return node;
    }
    case PlanKind::kAggregate: {
      auto node = std::make_shared<PlanNode>(*plan);
      node->left = OrderConjunctsPass(plan->left, est);
      return node;
    }
  }
  return plan;
}

/// Sets BuildSide hints where estimates are decisive (≥2× apart). Joins
/// touching the private table keep kAuto: phase runs shrink that side at
/// runtime in ways static estimates cannot see.
PlanPtr BuildSidePass(const PlanPtr& plan, const CardinalityEstimator& est,
                      const std::string& private_table) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return plan;
    case PlanKind::kFilter:
    case PlanKind::kAggregate: {
      auto node = std::make_shared<PlanNode>(*plan);
      node->left = BuildSidePass(plan->left, est, private_table);
      return node;
    }
    case PlanKind::kJoin: {
      auto node = std::make_shared<PlanNode>(*plan);
      node->left = BuildSidePass(plan->left, est, private_table);
      node->right = BuildSidePass(plan->right, est, private_table);
      const bool touches_private =
          !private_table.empty() &&
          CountScansOf(plan, private_table) > 0;
      if (!touches_private) {
        const double l = est.EstimateRows(plan->left);
        const double r = est.EstimateRows(plan->right);
        if (l * 2 <= r) {
          node->build_side = BuildSide::kLeft;
        } else if (r * 2 <= l) {
          node->build_side = BuildSide::kRight;
        } else {
          node->build_side = BuildSide::kAuto;
        }
      } else {
        node->build_side = BuildSide::kAuto;
      }
      return node;
    }
  }
  return plan;
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr != nullptr) SplitInto(expr, out);
  return out;
}

std::vector<std::string> ReferencedColumns(const ExprPtr& expr) {
  std::set<std::string> cols;
  CollectColumns(expr, cols);
  return {cols.begin(), cols.end()};
}

PlanPtr PushDownFilters(const PlanPtr& plan, const Catalog& catalog) {
  UPA_CHECK(plan != nullptr);
  // Conjuncts that fit nowhere (e.g. unknown columns) re-attach at the
  // top, where execution reports the schema error as it would have before
  // optimization.
  std::vector<ExprPtr> leftover;
  PlanPtr optimized = Sink(plan, catalog, {}, leftover);
  return leftover.empty() ? optimized
                          : FilterPlan(optimized, Conjoin(leftover));
}

PlanPtr LiftFilters(const PlanPtr& plan) {
  UPA_CHECK(plan != nullptr);
  std::vector<ExprPtr> collected;
  PlanPtr stripped = StripFilters(plan, collected);
  return collected.empty() ? stripped
                           : FilterPlan(stripped, Conjoin(collected));
}

PlanPtr Optimize(const PlanPtr& plan, const Catalog& catalog,
                 const OptimizerOptions& options) {
  UPA_CHECK(plan != nullptr);
  if (plan->kind == PlanKind::kAggregate) {
    PlanPtr child = Optimize(plan->left, catalog, options);
    PlanPtr root = plan;
    if (child != plan->left) {
      auto n = std::make_shared<PlanNode>(*plan);
      n->left = std::move(child);
      root = std::move(n);
    }
    // Record the fusion decision (a physical choice, like build_side) so
    // PlanFingerprint distinguishes the compiled form. The columnar
    // engine fuses kAuto shapes anyway; marking makes the choice explicit
    // on optimized plans instead of an engine-internal default.
    if (options.fuse && root->fuse == FuseMode::kAuto &&
        FusableShape(root).has_value()) {
      root = WithFuseMode(root, FuseMode::kFuse);
    }
    return root;
  }
  const CardinalityEstimator est(&catalog);
  PlanPtr p = plan;
  if (options.pushdown) p = PushDownFilters(p, catalog);
  if (options.reorder_joins) p = ReorderJoins(p, catalog, est);
  if (options.order_conjuncts) p = OrderConjunctsPass(p, est);
  if (options.choose_build_side) {
    p = BuildSidePass(p, est, options.private_table);
  }
  return p;
}

}  // namespace upa::rel
