file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_support.dir/bench_table2_support.cpp.o"
  "CMakeFiles/bench_table2_support.dir/bench_table2_support.cpp.o.d"
  "bench_table2_support"
  "bench_table2_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
