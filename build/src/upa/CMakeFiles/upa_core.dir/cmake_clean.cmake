file(REMOVE_RECURSE
  "CMakeFiles/upa_core.dir/exclusion.cpp.o"
  "CMakeFiles/upa_core.dir/exclusion.cpp.o.d"
  "CMakeFiles/upa_core.dir/group.cpp.o"
  "CMakeFiles/upa_core.dir/group.cpp.o.d"
  "CMakeFiles/upa_core.dir/range_enforcer.cpp.o"
  "CMakeFiles/upa_core.dir/range_enforcer.cpp.o.d"
  "CMakeFiles/upa_core.dir/runner.cpp.o"
  "CMakeFiles/upa_core.dir/runner.cpp.o.d"
  "CMakeFiles/upa_core.dir/types.cpp.o"
  "CMakeFiles/upa_core.dir/types.cpp.o.d"
  "libupa_core.a"
  "libupa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
