# Empty dependencies file for relational_csv_test.
# This may be replaced when dependencies are built.
