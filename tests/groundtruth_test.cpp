// Ground truth: the exact-incremental method must equal the naive
// rerun-everything oracle on both plan queries and map/reduce queries.
#include "groundtruth/ground_truth.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "relational/plan.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace upa::gt {
namespace {

TEST(GroundTruthStructTest, FinalizeComputesExtremesAndSensitivity) {
  GroundTruth gt;
  gt.output = 10.0;
  gt.neighbour_outputs = {8.0, 9.5, 10.0, 12.0};
  gt.FinalizeFrom(gt.output);
  EXPECT_DOUBLE_EQ(gt.min_output, 8.0);
  EXPECT_DOUBLE_EQ(gt.max_output, 12.0);
  EXPECT_DOUBLE_EQ(gt.local_sensitivity, 2.0);
}

TEST(GroundTruthStructTest, EmptyNeighboursDegenerate) {
  GroundTruth gt;
  gt.output = 5.0;
  gt.FinalizeFrom(5.0);
  EXPECT_DOUBLE_EQ(gt.local_sensitivity, 0.0);
  EXPECT_DOUBLE_EQ(gt.min_output, 5.0);
}

TEST(NaiveGroundTruthTest, CountQuery) {
  auto run = [](std::optional<size_t> excluded) {
    return excluded.has_value() ? 99.0 : 100.0;
  };
  GroundTruth gt = NaiveGroundTruth(100, run);
  EXPECT_DOUBLE_EQ(gt.output, 100.0);
  EXPECT_EQ(gt.neighbour_outputs.size(), 100u);
  EXPECT_DOUBLE_EQ(gt.local_sensitivity, 1.0);
}

TEST(ExactSimpleGroundTruthTest, MatchesNaiveOnSumQuery) {
  engine::ExecContext ctx(engine::ExecConfig{.threads = 2});
  auto values = std::make_shared<std::vector<double>>();
  Rng rng(5);
  for (int i = 0; i < 300; ++i) values->push_back(rng.UniformDouble(-3, 7));

  core::SimpleQuerySpec<double> spec;
  spec.name = "sum";
  spec.ctx = &ctx;
  spec.records = values;
  spec.map_record = [](const double& v) { return core::Vec{v}; };
  spec.sample_domain = [](Rng& r) { return r.UniformDouble(-3, 7); };

  GroundTruth exact = ExactSimpleGroundTruth(spec, /*n_additions=*/50, 9);

  double total = std::accumulate(values->begin(), values->end(), 0.0);
  auto run = [&](std::optional<size_t> excluded) {
    return excluded.has_value() ? total - (*values)[*excluded] : total;
  };
  GroundTruth naive = NaiveGroundTruth(values->size(), run);

  EXPECT_NEAR(exact.output, naive.output, 1e-9);
  ASSERT_GE(exact.neighbour_outputs.size(), naive.neighbour_outputs.size());
  for (size_t i = 0; i < naive.neighbour_outputs.size(); ++i) {
    EXPECT_NEAR(exact.neighbour_outputs[i], naive.neighbour_outputs[i], 1e-9);
  }
  // Sensitivity at least the removal-side max.
  EXPECT_GE(exact.local_sensitivity, naive.local_sensitivity - 1e-9);
}

TEST(ExactSimpleGroundTruthTest, NonlinearPostIsHandled) {
  // post squares the sum: influence of record r is |S² - (S - r)²| — not
  // additive in outputs, but exact via monoid subtraction.
  engine::ExecContext ctx(engine::ExecConfig{.threads = 1});
  auto values = std::make_shared<std::vector<double>>(
      std::vector<double>{1.0, 2.0, 3.0});
  core::SimpleQuerySpec<double> spec;
  spec.name = "sumsq";
  spec.ctx = &ctx;
  spec.records = values;
  spec.map_record = [](const double& v) { return core::Vec{v}; };
  spec.sample_domain = [](Rng&) { return 1.0; };
  spec.post = [](const core::Vec& v) {
    double s = core::ScalarOf(v);
    return core::Vec{s * s};
  };
  GroundTruth gt = ExactSimpleGroundTruth(spec, 0, 1);
  EXPECT_DOUBLE_EQ(gt.output, 36.0);
  EXPECT_DOUBLE_EQ(gt.neighbour_outputs[0], 25.0);  // (6-1)²
  EXPECT_DOUBLE_EQ(gt.neighbour_outputs[1], 16.0);
  EXPECT_DOUBLE_EQ(gt.neighbour_outputs[2], 9.0);
  EXPECT_DOUBLE_EQ(gt.local_sensitivity, 27.0);
}

class PlanGroundTruthTest : public ::testing::Test {
 protected:
  PlanGroundTruthTest()
      : data_([] {
          tpch::TpchConfig cfg;
          cfg.num_orders = 200;
          return cfg;
        }()),
        ctx_(engine::ExecConfig{.threads = 2, .default_partitions = 3}),
        catalog_(data_.catalog()),
        executor_(&ctx_, &catalog_) {}

  tpch::TpchDataset data_;
  engine::ExecContext ctx_;
  rel::Catalog catalog_;
  rel::PlanExecutor executor_;
};

TEST_F(PlanGroundTruthTest, ExactMatchesNaiveOnEveryTpchQuery) {
  for (const auto& q : tpch::AllTpchQueries()) {
    size_t n = data_.table(q.private_table).NumRows();
    auto exact = ExactPlanGroundTruth(
        executor_, q.plan, q.private_table, n,
        [&](Rng& rng) { return data_.SampleRow(q.private_table, rng); },
        /*n_additions=*/0, 1);
    ASSERT_TRUE(exact.ok()) << q.name;

    // Naive: re-run the plan excluding each of the first 40 records.
    size_t probe = std::min<size_t>(40, n);
    for (size_t i = 0; i < probe; ++i) {
      std::vector<size_t> excl{i};
      rel::ExecOptions opts;
      opts.private_table = q.private_table;
      opts.exclude_rows = &excl;
      auto r = executor_.Execute(q.plan, opts);
      ASSERT_TRUE(r.ok()) << q.name;
      EXPECT_NEAR(r.value().output, exact.value().neighbour_outputs[i], 1e-6)
          << q.name << " record " << i;
    }
  }
}

TEST_F(PlanGroundTruthTest, AdditionsExtendNeighbourList) {
  auto q = tpch::MakeQ1();
  size_t n = data_.lineitem().NumRows();
  auto gt = ExactPlanGroundTruth(
      executor_, q.plan, q.private_table, n,
      [&](Rng& rng) { return data_.SampleRow("lineitem", rng); },
      /*n_additions=*/25, 3);
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt.value().neighbour_outputs.size(), n + 25);
  // Count query: every addition neighbour is N+1, every removal N-1.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(gt.value().neighbour_outputs[i],
                     static_cast<double>(n - 1));
  }
  for (size_t i = n; i < n + 25; ++i) {
    EXPECT_DOUBLE_EQ(gt.value().neighbour_outputs[i],
                     static_cast<double>(n + 1));
  }
  EXPECT_DOUBLE_EQ(gt.value().local_sensitivity, 1.0);
}

TEST_F(PlanGroundTruthTest, Q21SensitivityReflectsJoinFanout) {
  // A lineitem participates in at most a handful of joined results, but
  // the Zipf skew means the ground-truth sensitivity exceeds 1 for join
  // queries with fan-out through orders.
  auto q = tpch::MakeQ4();
  size_t n = data_.orders().NumRows();
  auto gt = ExactPlanGroundTruth(
      executor_, q.plan, q.private_table, n,
      [&](Rng& rng) { return data_.SampleRow("orders", rng); }, 0, 1);
  ASSERT_TRUE(gt.ok());
  EXPECT_GE(gt.value().local_sensitivity, 1.0);
  EXPECT_LT(gt.value().local_sensitivity, 100.0);
}

}  // namespace
}  // namespace upa::gt
