file(REMOVE_RECURSE
  "CMakeFiles/private_ml.dir/private_ml.cpp.o"
  "CMakeFiles/private_ml.dir/private_ml.cpp.o.d"
  "private_ml"
  "private_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
