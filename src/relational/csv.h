// CSV import/export for tables — the on-ramp for real datasets into the
// relational layer (a data provider loads CSVs, then serves UPA queries
// over them).
//
// Format: header row of column names, RFC-4180-style quoting for fields
// containing commas/quotes/newlines. Types come from the caller-provided
// schema on import (CSV itself is untyped).
#pragma once

#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace upa::rel {

/// Serializes a table (header + rows).
std::string TableToCsv(const Table& table);

/// Writes TableToCsv to `path`.
Status WriteCsvFile(const Table& table, const std::string& path);

/// Parses CSV text into a table named `name` with the given schema. The
/// header must match the schema's column names (order included). Numeric
/// parse failures and arity mismatches produce INVALID_ARGUMENT with the
/// offending line number.
Result<Table> TableFromCsv(const std::string& name, const Schema& schema,
                           const std::string& csv);

/// Reads `path` and parses with TableFromCsv.
Result<Table> ReadCsvFile(const std::string& name, const Schema& schema,
                          const std::string& path);

}  // namespace upa::rel
