#include "upa/exclusion.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"

namespace upa::core {
namespace {

std::vector<Vec> NaiveExclusion(const std::vector<Vec>& mapped) {
  const size_t n = mapped.size();
  std::vector<Vec> out(n);
  for (size_t i = 0; i < n; ++i) {
    Vec acc = VecSum::Identity();
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      acc = VecSum::Combine(std::move(acc), mapped[j]);
    }
    out[i] = std::move(acc);
  }
  return out;
}

std::vector<Vec> ScanExclusion(const std::vector<Vec>& mapped) {
  const size_t n = mapped.size();
  // prefix[i] = m[0] ⊕ ... ⊕ m[i-1]  (prefix[0] = identity)
  // suffix[i] = m[i] ⊕ ... ⊕ m[n-1]  (suffix[n] = identity)
  std::vector<Vec> prefix(n + 1), suffix(n + 1);
  prefix[0] = VecSum::Identity();
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = VecSum::Combine(prefix[i], mapped[i]);
  }
  suffix[n] = VecSum::Identity();
  for (size_t i = n; i-- > 0;) {
    suffix[i] = VecSum::Combine(suffix[i + 1], mapped[i]);
  }
  std::vector<Vec> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = VecSum::Combine(prefix[i], suffix[i + 1]);
  }
  return out;
}

/// Upper bound on kParallelScan's block count. Boundaries are a function of
/// n alone so the result cannot depend on how many workers execute the
/// blocks; 64 blocks keeps every realistic pool saturated while the
/// sequential combine pass over block totals stays negligible.
constexpr size_t kParallelScanMaxBlocks = 64;

std::vector<Vec> ParallelScanExclusion(const std::vector<Vec>& mapped,
                                       ThreadPool* pool) {
  const size_t n = mapped.size();
  const size_t per = std::max<size_t>(
      1, (n + kParallelScanMaxBlocks - 1) / kParallelScanMaxBlocks);
  const size_t blocks = (n + per - 1) / per;
  auto block_range = [&](size_t c) {
    return std::pair<size_t, size_t>{c * per, std::min(n, (c + 1) * per)};
  };
  auto run_blocks = [&](const std::function<void(size_t)>& fn) {
    if (pool != nullptr && pool->thread_count() > 1) {
      // One block per morsel: blocks are few and individually heavy, so
      // pulling them off the shared cursor lets a worker stuck behind a
      // slow block leave the rest to its peers (static chunking would
      // stall the whole pass on it). Block *boundaries* stay a function
      // of n alone, so outputs are unchanged.
      pool->ParallelForMorsels(blocks, 1, [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) fn(c);
      });
    } else {
      for (size_t c = 0; c < blocks; ++c) fn(c);
    }
  };

  // Pass 1 (parallel): local prefix/suffix scans per block.
  // local_prefix[c][k] = m[b] ⊕ ... ⊕ m[b+k-1], local_suffix[c][k] =
  // m[b+k] ⊕ ... ⊕ m[e-1] for block [b, e). Both folds are left-to-right /
  // right-to-left within the block — a fixed association order.
  std::vector<std::vector<Vec>> local_prefix(blocks), local_suffix(blocks);
  run_blocks([&](size_t c) {
    auto [b, e] = block_range(c);
    const size_t len = e - b;
    local_prefix[c].resize(len + 1);
    local_suffix[c].resize(len + 1);
    local_prefix[c][0] = VecSum::Identity();
    for (size_t k = 0; k < len; ++k) {
      local_prefix[c][k + 1] = VecSum::Combine(local_prefix[c][k], mapped[b + k]);
    }
    local_suffix[c][len] = VecSum::Identity();
    for (size_t k = len; k-- > 0;) {
      local_suffix[c][k] = VecSum::Combine(local_suffix[c][k + 1], mapped[b + k]);
    }
  });

  // Pass 2 (sequential, O(blocks) combines): fold block totals into
  // before[c] = R(blocks < c) and after[c] = R(blocks > c).
  std::vector<Vec> before(blocks), after(blocks);
  before[0] = VecSum::Identity();
  for (size_t c = 1; c < blocks; ++c) {
    before[c] = VecSum::Combine(before[c - 1], local_prefix[c - 1].back());
  }
  after[blocks - 1] = VecSum::Identity();
  for (size_t c = blocks - 1; c-- > 0;) {
    after[c] = VecSum::Combine(after[c + 1], local_suffix[c + 1].front());
  }

  // Pass 3 (parallel): emit every exclusion with one fixed combine shape.
  std::vector<Vec> out(n);
  run_blocks([&](size_t c) {
    auto [b, e] = block_range(c);
    for (size_t k = 0; k < e - b; ++k) {
      out[b + k] = VecSum::Combine(
          VecSum::Combine(before[c], local_prefix[c][k]),
          VecSum::Combine(local_suffix[c][k + 1], after[c]));
    }
  });
  return out;
}

}  // namespace

std::vector<Vec> ExclusionAggregate(const std::vector<Vec>& mapped,
                                    ExclusionStrategy strategy,
                                    ThreadPool* pool) {
  UPA_CHECK_MSG(!mapped.empty(), "exclusion over an empty sample");
  switch (strategy) {
    case ExclusionStrategy::kNaive:
      return NaiveExclusion(mapped);
    case ExclusionStrategy::kScan:
      return ScanExclusion(mapped);
    case ExclusionStrategy::kParallelScan:
      return ParallelScanExclusion(mapped, pool);
  }
  UPA_CHECK_MSG(false, "unknown ExclusionStrategy value");
  return {};  // unreachable; UPA_CHECK aborts
}

Vec TotalAggregate(const std::vector<Vec>& mapped) {
  return VecSum::Reduce(mapped);
}

}  // namespace upa::core
