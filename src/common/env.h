// Environment-variable experiment knobs.
//
// Benchmarks read their scale parameters (dataset rows, sample sizes, trial
// counts) through these helpers so experiments can be scaled up toward the
// paper's sizes (e.g. UPA_ROWS=200000 ./bench_fig3_coverage) without
// recompiling. Defaults are chosen to finish quickly on a laptop.
#pragma once

#include <cstdint>
#include <string>

namespace upa {

/// Value of environment variable `name`, or `fallback` if unset/unparsable.
int64_t EnvInt(const char* name, int64_t fallback);
double EnvDouble(const char* name, double fallback);
std::string EnvString(const char* name, const std::string& fallback);

}  // namespace upa
