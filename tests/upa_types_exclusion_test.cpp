#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "upa/exclusion.h"
#include "upa/types.h"

namespace upa::core {
namespace {

TEST(VecSumTest, IdentityIsNeutralBothSides) {
  Vec v{1.0, 2.0};
  EXPECT_EQ(VecSum::Combine(VecSum::Identity(), v), v);
  EXPECT_EQ(VecSum::Combine(v, VecSum::Identity()), v);
}

TEST(VecSumTest, CombinesElementwise) {
  Vec a{1.0, 2.0, 3.0};
  Vec b{10.0, 20.0, 30.0};
  EXPECT_EQ(VecSum::Combine(a, b), (Vec{11.0, 22.0, 33.0}));
}

TEST(VecSumTest, SubtractInvertsCombine) {
  Vec a{5.0, 7.0};
  Vec b{2.0, 3.0};
  Vec combined = VecSum::Combine(a, b);
  EXPECT_EQ(VecSum::Subtract(combined, b), a);
}

TEST(VecSumTest, SubtractFromIdentityNegates) {
  Vec b{2.0, -3.0};
  EXPECT_EQ(VecSum::Subtract(VecSum::Identity(), b), (Vec{-2.0, 3.0}));
}

TEST(VecSumTest, ReduceSequence) {
  std::vector<Vec> vs{{1.0}, {2.0}, {3.0}};
  EXPECT_EQ(VecSum::Reduce(vs), (Vec{6.0}));
  EXPECT_EQ(VecSum::Reduce({}), VecSum::Identity());
}

TEST(ScalarHelpersTest, ScalarOfAndNorms) {
  EXPECT_DOUBLE_EQ(ScalarOf(Vec{4.5, 9.9}), 4.5);
  EXPECT_DOUBLE_EQ(ScalarOf(VecSum::Identity()), 0.0);
  EXPECT_DOUBLE_EQ(L2Norm(Vec{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(L2Norm({}), 0.0);
  EXPECT_DOUBLE_EQ(L1Distance(Vec{1.0, 2.0}, Vec{3.0, 0.0}), 4.0);
  EXPECT_DOUBLE_EQ(L1Distance(Vec{1.0, -2.0}, {}), 3.0);
}

// Commutativity + associativity of the shipped reducer — the properties
// UPA's whole derivation rests on (paper §II-C).
TEST(VecSumPropertyTest, CommutativeAndAssociative) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    Vec a(3), b(3), c(3);
    for (int j = 0; j < 3; ++j) {
      a[j] = rng.UniformDouble(-5, 5);
      b[j] = rng.UniformDouble(-5, 5);
      c[j] = rng.UniformDouble(-5, 5);
    }
    Vec ab = VecSum::Combine(a, b);
    Vec ba = VecSum::Combine(b, a);
    EXPECT_EQ(ab, ba);
    Vec ab_c = VecSum::Combine(VecSum::Combine(a, b), c);
    Vec a_bc = VecSum::Combine(a, VecSum::Combine(b, c));
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(ab_c[j], a_bc[j], 1e-12);
  }
}

TEST(ExclusionTest, SingleElementExcludesToIdentity) {
  std::vector<Vec> mapped{{7.0}};
  for (auto strategy : {ExclusionStrategy::kNaive, ExclusionStrategy::kScan,
                        ExclusionStrategy::kParallelScan}) {
    auto excl = ExclusionAggregate(mapped, strategy);
    ASSERT_EQ(excl.size(), 1u);
    EXPECT_EQ(excl[0], VecSum::Identity());
  }
}

TEST(ExclusionTest, KnownSmallCase) {
  std::vector<Vec> mapped{{1.0}, {2.0}, {4.0}};
  auto excl = ExclusionAggregate(mapped, ExclusionStrategy::kScan);
  ASSERT_EQ(excl.size(), 3u);
  EXPECT_DOUBLE_EQ(excl[0][0], 6.0);
  EXPECT_DOUBLE_EQ(excl[1][0], 5.0);
  EXPECT_DOUBLE_EQ(excl[2][0], 3.0);
}

TEST(ExclusionTest, TotalAggregateMatchesSum) {
  std::vector<Vec> mapped{{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  EXPECT_EQ(TotalAggregate(mapped), (Vec{6.0, 60.0}));
}

// Property: for every element, excl[i] ⊕ m[i] == total.
class ExclusionInvariantSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ExclusionInvariantSweep, ExclusionPlusSelfIsTotal) {
  auto [n, dim] = GetParam();
  Rng rng(300 + n + dim);
  std::vector<Vec> mapped(n, Vec(dim));
  for (auto& m : mapped) {
    for (double& v : m) v = rng.UniformDouble(-10, 10);
  }
  Vec total = TotalAggregate(mapped);
  for (auto strategy : {ExclusionStrategy::kNaive, ExclusionStrategy::kScan,
                        ExclusionStrategy::kParallelScan}) {
    auto excl = ExclusionAggregate(mapped, strategy);
    ASSERT_EQ(excl.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Vec restored = VecSum::Combine(excl[i], mapped[i]);
      ASSERT_EQ(restored.size(), total.size());
      for (size_t j = 0; j < total.size(); ++j) {
        EXPECT_NEAR(restored[j], total[j], 1e-9) << "i=" << i << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExclusionInvariantSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{7, 3},
                      std::pair{64, 2}, std::pair{200, 5}));

// The strategies must agree to floating-point near-equality.
class StrategyAgreementSweep : public ::testing::TestWithParam<int> {};

TEST_P(StrategyAgreementSweep, NaiveEqualsScanEqualsParallelScan) {
  int n = GetParam();
  Rng rng(500 + n);
  std::vector<Vec> mapped(n, Vec(2));
  for (auto& m : mapped) {
    m[0] = rng.UniformDouble(-1, 1);
    m[1] = rng.Normal(0, 3);
  }
  auto naive = ExclusionAggregate(mapped, ExclusionStrategy::kNaive);
  auto scan = ExclusionAggregate(mapped, ExclusionStrategy::kScan);
  ThreadPool pool(4);
  auto par = ExclusionAggregate(mapped, ExclusionStrategy::kParallelScan, &pool);
  ASSERT_EQ(naive.size(), scan.size());
  ASSERT_EQ(naive.size(), par.size());
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(naive[i].size(), scan[i].size());
    ASSERT_EQ(naive[i].size(), par[i].size());
    for (size_t j = 0; j < naive[i].size(); ++j) {
      EXPECT_NEAR(naive[i][j], scan[i][j], 1e-9);
      EXPECT_NEAR(naive[i][j], par[i][j], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StrategyAgreementSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 500));

// kParallelScan's contract: chunk boundaries and combine orders are fixed
// by n alone, so the result is BIT-identical across pool sizes — and
// identical to running the same algorithm with no pool at all.
class ParallelScanDeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelScanDeterminismSweep, BitIdenticalAcrossPoolSizes) {
  int n = GetParam();
  Rng rng(900 + n);
  std::vector<Vec> mapped(n, Vec(3));
  for (auto& m : mapped) {
    for (double& v : m) v = rng.Normal(0, 5);
  }
  auto reference =
      ExclusionAggregate(mapped, ExclusionStrategy::kParallelScan, nullptr);
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    auto par =
        ExclusionAggregate(mapped, ExclusionStrategy::kParallelScan, &pool);
    // operator== on Vec compares doubles exactly: bit-identity, not
    // tolerance.
    EXPECT_EQ(par, reference) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelScanDeterminismSweep,
                         ::testing::Values(1, 2, 63, 64, 65, 500, 1000));

}  // namespace
}  // namespace upa::core
