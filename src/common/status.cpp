#include "common/status.h"

namespace upa {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace detail {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "UPA_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace upa
