#include "mlkit/kmeans.h"

#include <limits>

#include "common/status.h"

namespace upa::ml {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  UPA_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  double ss = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    ss += d * d;
  }
  return ss;
}

}  // namespace

size_t NearestCentroid(const Centroids& centroids,
                       const std::vector<double>& x) {
  UPA_CHECK_MSG(!centroids.empty(), "no centroids");
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    double d = SquaredDistance(centroids[c], x);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

core::Vec KMeansMap(const KMeansSpec& spec, const MlPoint& p) {
  const size_t k = spec.centroids.size();
  const size_t d = spec.centroids[0].size();
  core::Vec out(k * d + k, 0.0);
  size_t c = NearestCentroid(spec.centroids, p.x);
  for (size_t j = 0; j < d; ++j) out[c * d + j] = p.x[j];
  out[k * d + c] = 1.0;
  return out;
}

core::Vec KMeansPost(const KMeansSpec& spec, const core::Vec& reduced) {
  const size_t k = spec.centroids.size();
  const size_t d = spec.centroids[0].size();
  core::Vec updated(k * d);
  if (reduced.empty()) {
    for (size_t c = 0; c < k; ++c) {
      for (size_t j = 0; j < d; ++j) updated[c * d + j] = spec.centroids[c][j];
    }
    return updated;
  }
  UPA_CHECK_MSG(reduced.size() == k * d + k, "reduced dimension mismatch");
  for (size_t c = 0; c < k; ++c) {
    double count = reduced[k * d + c];
    for (size_t j = 0; j < d; ++j) {
      updated[c * d + j] = count > 0.0 ? reduced[c * d + j] / count
                                       : spec.centroids[c][j];
    }
  }
  return updated;
}

core::SimpleQuerySpec<MlPoint> MakeKMeansSpec(
    engine::ExecContext* ctx, const MlDataset& data, KMeansSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override) {
  UPA_CHECK_MSG(!spec.centroids.empty(), "KMeans needs centroids");
  for (const auto& c : spec.centroids) {
    UPA_CHECK_MSG(c.size() == data.config().dims,
                  "centroid dimension must match dataset dims");
  }
  core::SimpleQuerySpec<MlPoint> q;
  q.name = "KMeans";
  q.ctx = ctx;
  q.records = records_override != nullptr ? records_override : data.points();
  q.map_record = [spec](const MlPoint& p) { return KMeansMap(spec, p); };
  q.sample_domain = [&data](Rng& rng) { return data.SamplePoint(rng); };
  q.post = [spec](const core::Vec& reduced) {
    return KMeansPost(spec, reduced);
  };
  q.scalarize = [](const core::Vec& v) { return core::L2Norm(v); };
  return q;
}

core::QueryInstance MakeKMeansQuery(
    engine::ExecContext* ctx, const MlDataset& data, KMeansSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override) {
  return core::MakeSimpleQuery(
      MakeKMeansSpec(ctx, data, std::move(spec), std::move(records_override)));
}

Centroids LloydIterations(const std::vector<MlPoint>& points, Centroids init,
                          size_t iterations) {
  Centroids current = std::move(init);
  for (size_t it = 0; it < iterations; ++it) {
    KMeansSpec spec{current};
    core::Vec reduced = core::VecSum::Identity();
    for (const MlPoint& p : points) {
      reduced = core::VecSum::Combine(std::move(reduced), KMeansMap(spec, p));
    }
    core::Vec flat = KMeansPost(spec, reduced);
    const size_t k = current.size();
    const size_t d = current[0].size();
    for (size_t c = 0; c < k; ++c) {
      for (size_t j = 0; j < d; ++j) current[c][j] = flat[c * d + j];
    }
  }
  return current;
}

Centroids InitCentroids(const std::vector<MlPoint>& points, size_t k) {
  UPA_CHECK_MSG(points.size() >= k, "fewer points than clusters");
  Centroids init;
  init.reserve(k);
  for (const MlPoint& p : points) {
    bool duplicate = false;
    for (const auto& c : init) {
      if (c == p.x) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) init.push_back(p.x);
    if (init.size() == k) break;
  }
  UPA_CHECK_MSG(init.size() == k, "not enough distinct points for k clusters");
  return init;
}

}  // namespace upa::ml
