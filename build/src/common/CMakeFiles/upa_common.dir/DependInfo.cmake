
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/env.cpp" "src/common/CMakeFiles/upa_common.dir/env.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/env.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/upa_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/normal_fit.cpp" "src/common/CMakeFiles/upa_common.dir/normal_fit.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/normal_fit.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/upa_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/upa_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/upa_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/status.cpp.o.d"
  "/root/repo/src/common/table_printer.cpp" "src/common/CMakeFiles/upa_common.dir/table_printer.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/table_printer.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/upa_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/upa_common.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
