#!/usr/bin/env bash
# Cluster smoke: 2 upa_shard processes behind an upa_router, driven with
# upa_client. Mid-run, one shard is SIGKILLed: queries it owned must fail
# fast with UNAVAILABLE while the surviving shard keeps answering. The
# shard is then restarted over the SAME journal dir; once the router's
# health probe readmits it, the full pre-kill workload is replayed and the
# released values must match the pre-kill run bit-for-bit (the repeat-query
# defense serves the journaled release, so any lost registry state would
# change the output).
#
# With --kill-during-release the script instead runs the exactly-once
# drill: one shard with a failpoint that SIGKILLs it AFTER appending the
# kRelease journal record but BEFORE acknowledging the client — the
# classic "did my commit land?" window. The keyed query is re-sent with
# the same --nonce/--seq after restart and must be answered from the
# journaled dedup window; journal_dump must show exactly ONE release per
# key no matter how many times it was (re)submitted.
#
# Usage: scripts/run_cluster.sh [--kill-during-release] [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

DRILL=0
if [ "${1:-}" = "--kill-during-release" ]; then
  DRILL=1
  shift
fi

BUILD_DIR="${1:-build}"
SHARD_BIN="$BUILD_DIR/examples/upa_shard"
ROUTER_BIN="$BUILD_DIR/examples/upa_router"
CLIENT_BIN="$BUILD_DIR/examples/upa_client"
DUMP_BIN="$BUILD_DIR/examples/journal_dump"
for bin in "$SHARD_BIN" "$ROUTER_BIN" "$CLIENT_BIN" "$DUMP_BIN"; do
  [ -x "$bin" ] || { echo "missing $bin (build first)"; exit 2; }
done

WORK="$(mktemp -d /tmp/upa-cluster-smoke-XXXXXX)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_file() { # path [timeout_s]
  local path="$1" deadline=$((SECONDS + ${2:-15}))
  until [ -s "$path" ]; do
    [ "$SECONDS" -lt "$deadline" ] || { echo "timeout waiting for $path"; exit 1; }
    sleep 0.05
  done
}

start_shard() { # index
  local i="$1"
  rm -f "$WORK/port$i"
  mkdir -p "$WORK/journal$i"
  "$SHARD_BIN" --port "${SHARD_PORT[$i]:-0}" --port-file "$WORK/port$i" \
    --journal-dir "$WORK/journal$i" --shard-name "shard$i" \
    --threads 2 --sample-n 64 >"$WORK/shard$i.log" 2>&1 &
  PIDS+=($!); disown $!
  SHARD_PID[$i]=$!
  wait_for_file "$WORK/port$i"
  SHARD_PORT[$i]=$(cat "$WORK/port$i")
}

declare -a SHARD_PID SHARD_PORT

if [ "$DRILL" -eq 1 ]; then
  echo "== exactly-once drill: SIGKILL after release-append, before ack =="
  export UPA_FAILPOINTS="service/post_release_pre_ack=kill:every(2)"
  start_shard 0
  unset UPA_FAILPOINTS
  NONCE=0xd511

  keyed_query() { # seq -> first output line
    "$CLIENT_BIN" "${SHARD_PORT[0]}" --nonce "$NONCE" --seq "$1" \
      "count:2000" ds-drill | head -1
  }

  # Key 1 releases and acks normally (failpoint hit 1 of every(2)).
  FIRST=$(keyed_query 1)
  echo "key seq=1: $FIRST"

  # Key 2 trips the failpoint: the shard appends its kRelease record and
  # dies WITHOUT acking. The client only sees a dead connection — it
  # cannot know whether the release landed. This is the in-doubt window
  # idempotency keys exist for.
  if LOST=$(keyed_query 2 2>&1); then
    echo "FAIL: query should have lost its shard before the ack"; exit 1
  fi
  echo "key seq=2: shard died mid-ack (expected)"
  while kill -0 "${SHARD_PID[0]}" 2>/dev/null; do sleep 0.05; done

  echo "== restart over the same journal, re-send both keys verbatim =="
  start_shard 0

  # Key 2's release IS journaled: its re-submission must be answered from
  # the recovered dedup window, not executed (and charged) again.
  SECOND=$(keyed_query 2)
  echo "key seq=2 (replayed): $SECOND"
  FIRST_AGAIN=$(keyed_query 1)
  if [ "$FIRST" != "$FIRST_AGAIN" ]; then
    echo "FAIL: replay of key seq=1 changed: '$FIRST' vs '$FIRST_AGAIN'"
    exit 1
  fi

  # The journal is append-only history: exactly ONE release per key, no
  # matter how many times each was (re)submitted.
  "$DUMP_BIN" "$WORK"/journal0/*.journal >"$WORK/journal.txt"
  for seq in 1 2; do
    n=$(grep -c "^release.* nonce=$NONCE seq=$seq " "$WORK/journal.txt" || true)
    if [ "$n" -ne 1 ]; then
      echo "FAIL: key seq=$seq has $n release records (want exactly 1)"
      cat "$WORK/journal.txt"
      exit 1
    fi
  done
  echo "journal: exactly one release per key"
  echo "PASS: exactly-once release survived kill-during-release"
  exit 0
fi

start_shard 0
start_shard 1
echo "shards up: 127.0.0.1:${SHARD_PORT[0]} 127.0.0.1:${SHARD_PORT[1]}"

"$ROUTER_BIN" 0 "127.0.0.1:${SHARD_PORT[0]}" "127.0.0.1:${SHARD_PORT[1]}" \
  >"$WORK/router.log" 2>&1 &
PIDS+=($!); disown $!
ROUTER_PID=$!
wait_for_file "$WORK/router.log"
ROUTER_PORT=$(awk '/^READY/{print $2; exit}' "$WORK/router.log")
[ -n "$ROUTER_PORT" ] || { echo "router did not print READY"; cat "$WORK/router.log"; exit 1; }
echo "router up: 127.0.0.1:$ROUTER_PORT"

wait_healthy() { # expected-count [timeout_s]
  local want="$1" deadline=$((SECONDS + ${2:-20}))
  while :; do
    local got
    got=$("$CLIENT_BIN" "$ROUTER_PORT" --stats 2>/dev/null | grep -c 'healthy$' || true)
    [ "$got" -ge "$want" ] && return 0
    [ "$SECONDS" -lt "$deadline" ] || { echo "timeout: $got/$want shards healthy"; exit 1; }
    sleep 0.1
  done
}
wait_healthy 2

DATASETS=$(seq -f 'ds-%g' 1 12)
run_workload() { # outfile
  : >"$1"
  local ds
  for ds in $DATASETS; do
    echo "$ds $("$CLIENT_BIN" "$ROUTER_PORT" "count:2000" "$ds" | head -1)" >>"$1"
  done
}

echo "== phase 1: baseline workload over both shards =="
# First pass registers each query's partitions; the second is answered from
# the registry (repeat-query defense) and is the steady state every later
# replay must reproduce. A fresh execution and a registry-served repeat
# legitimately differ, so the baseline must itself be a repeat.
run_workload "$WORK/fresh.txt"
run_workload "$WORK/before.txt"

echo "== phase 2: SIGKILL shard1 mid-run =="
kill -9 "${SHARD_PID[1]}"
ok=0 unavailable=0
for ds in $DATASETS; do
  # No echo|grep here: grep -q exiting on first match can SIGPIPE echo,
  # which under pipefail fails the pipeline despite the match.
  if out=$("$CLIENT_BIN" "$ROUTER_PORT" "count:2000" "$ds" 2>&1); then
    ok=$((ok + 1))
  elif [[ "$out" == *UNAVAILABLE* ]]; then
    unavailable=$((unavailable + 1))
  else
    echo "unexpected failure for $ds: $out"; exit 1
  fi
done
echo "during outage: $ok served, $unavailable rejected UNAVAILABLE"
[ "$ok" -ge 1 ] || { echo "surviving shard served nothing"; exit 1; }
[ "$unavailable" -ge 1 ] || { echo "no query hit the dead shard"; exit 1; }

echo "== phase 3: restart shard1 over its journal, wait for readmission =="
start_shard 1
wait_healthy 2

echo "== phase 4: replay workload; releases must match phase 1 exactly =="
# A shard that lost its registry in the SIGKILL would answer these as FRESH
# queries (different value) instead of registry-served repeats.
run_workload "$WORK/after.txt"
if ! diff -u "$WORK/before.txt" "$WORK/after.txt"; then
  echo "FAIL: released values changed across SIGKILL + journal recovery"
  exit 1
fi

"$CLIENT_BIN" "$ROUTER_PORT" --stats | sed -n '1,12p'
echo "PASS: failover + bit-identical journal recovery"
