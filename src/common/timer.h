// Monotonic stopwatch and scoped phase timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace upa {

/// Wall-clock stopwatch on the steady clock.
class Stopwatch {
 public:
  Stopwatch() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Calls `on_done(elapsed_seconds)` when the scope ends. Used by the engine
/// to attribute time to named phases (map / reduce / shuffle / enforcer).
class ScopedTimer {
 public:
  explicit ScopedTimer(std::function<void(double)> on_done)
      : on_done_(std::move(on_done)) {}
  ~ScopedTimer() {
    if (on_done_) on_done_(watch_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::function<void(double)> on_done_;
  Stopwatch watch_;
};

}  // namespace upa
