// Table: a named, schema'd row store plus the column statistics FLEX's
// static analysis consumes (max join-key frequency per column), and the
// lazily-built columnar representation the vectorized engine executes on.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "relational/schema.h"

namespace upa::rel {

class ColumnarTable;

class Table {
 public:
  Table(std::string name, Schema schema, std::vector<Row> rows);

  // Copies/moves carry the caches but get a fresh mutex (a mutex is not
  // movable). Tables are immutable, so a copy keeps the source's uid: the
  // uid's only job is to never alias *different* data.
  Table(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(const Table&) = delete;
  Table& operator=(Table&&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  /// Process-unique identity, never reused. Cache keys use this instead of
  /// the Table* address: an address can be recycled by the allocator after
  /// a free (silently aliasing a stale cache entry), a uid cannot.
  uint64_t uid() const { return uid_; }

  /// Frequency of the most frequent value in `column` — the dataset
  /// metadata FLEX multiplies across joins (paper §II-B). Computed on
  /// first use and cached (metadata maintenance, as a real catalog would).
  /// Thread-safe: FLEX analysis and plan execution may share a catalog
  /// across pool threads.
  size_t MaxFrequency(const std::string& column) const;

  /// Number of distinct values in `column`. Thread-safe.
  size_t DistinctCount(const std::string& column) const;

  /// The columnar representation (relational/columnar.h): one typed vector
  /// per column, strings dictionary-encoded. Built on first use and cached
  /// for the table's lifetime; thread-safe.
  std::shared_ptr<const ColumnarTable> Columnar() const;

 private:
  struct ColumnStats {
    size_t max_frequency = 0;
    size_t distinct = 0;
  };
  ColumnStats StatsFor(const std::string& column) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  uint64_t uid_;
  /// Guards stats_cache_ and columnar_ (first-use memoization).
  mutable std::mutex cache_mu_;
  mutable std::map<std::string, ColumnStats> stats_cache_;
  mutable std::shared_ptr<const ColumnarTable> columnar_;
};

/// Name → table lookup used by plan execution and FLEX analysis.
using Catalog = std::map<std::string, const Table*>;

}  // namespace upa::rel
