#include "queries/plan_query.h"

#include <algorithm>

#include "relational/optimizer.h"

namespace upa::queries {

core::QueryInstance MakePlanQuery(
    engine::ExecContext* ctx, std::shared_ptr<const rel::PlanExecutor> executor,
    const tpch::TpchDataset* data, const tpch::TpchQuery& query,
    std::shared_ptr<const std::vector<rel::Row>> private_rows_override,
    bool optimize) {
  UPA_CHECK(ctx != nullptr && executor != nullptr && data != nullptr);

  tpch::TpchQuery planned = query;
  if (optimize) {
    rel::OptimizerOptions opt;
    opt.private_table = query.private_table;
    planned.plan = rel::Optimize(query.plan, data->catalog(), opt);
  }

  core::QueryInstance instance;
  instance.name = query.name;
  instance.ctx = ctx;
  instance.num_records = private_rows_override != nullptr
                             ? private_rows_override->size()
                             : data->table(query.private_table).NumRows();
  // Count/Sum queries release the aggregate itself: post = identity,
  // scalarize = first coordinate (defaults).

  instance.execute_phases =
      [ctx, executor = std::move(executor), data, query = std::move(planned),
       rows_override = std::move(private_rows_override)](
          std::span<const size_t> sample_indices, size_t num_partitions,
          size_t num_domain, uint64_t seed) {
        core::MappedBatches out;
        std::vector<size_t> sample(sample_indices.begin(),
                                   sample_indices.end());
        const std::vector<rel::Row>* replacement =
            rows_override != nullptr ? rows_override.get() : nullptr;

        // --- 1. S' run: per-partition aggregates of the unsampled side.
        {
          rel::ExecOptions opts;
          // Phase runs ride the vectorized engine; the row oracle exists
          // for the differential tests, not for production runs.
          opts.engine = rel::ExecEngine::kColumnar;
          opts.private_table = query.private_table;
          opts.replace_private_rows = replacement;
          opts.exclude_rows = &sample;
          opts.partitions = num_partitions;
          opts.cache_epoch = seed;
          Result<rel::ExecResult> r = ctx->TimePhase(
              "upa/plan_sprime", [&] { return executor->Execute(query.plan, opts); });
          UPA_CHECK_MSG(r.ok(), "S' run failed: " + r.status().ToString());
          out.sprime_partials.reserve(num_partitions);
          for (double partial : r.value().partition_outputs) {
            out.sprime_partials.push_back(core::Vec{partial});
          }
        }

        // --- 2. Sample run: joinDP's second join pass with contribution
        //        (index) tracking.
        {
          rel::ExecOptions opts;
          opts.engine = rel::ExecEngine::kColumnar;
          opts.private_table = query.private_table;
          opts.replace_private_rows = replacement;
          opts.include_rows = &sample;
          opts.track_contributions = true;
          opts.cache_epoch = seed;
          Result<rel::ExecResult> r = ctx->TimePhase(
              "upa/plan_sample", [&] { return executor->Execute(query.plan, opts); });
          UPA_CHECK_MSG(r.ok(), "sample run failed: " + r.status().ToString());
          out.sample_mapped.reserve(sample.size());
          for (size_t idx : sample) {
            auto it = r.value().contributions.find(idx);
            out.sample_mapped.push_back(
                core::Vec{it == r.value().contributions.end() ? 0.0
                                                              : it->second});
          }
        }

        // --- 3. Domain run: synthetic rows standing in for D \ x.
        {
          Rng rng = Rng::ForStream(seed, "upa/domain/" + query.name);
          std::vector<rel::Row> synthetic;
          synthetic.reserve(num_domain);
          for (size_t i = 0; i < num_domain; ++i) {
            synthetic.push_back(data->SampleRow(query.private_table, rng));
          }
          rel::ExecOptions opts;
          opts.engine = rel::ExecEngine::kColumnar;
          opts.private_table = query.private_table;
          opts.replace_private_rows = &synthetic;
          opts.track_contributions = true;
          opts.cache_epoch = seed;
          Result<rel::ExecResult> r = ctx->TimePhase(
              "upa/plan_domain", [&] { return executor->Execute(query.plan, opts); });
          UPA_CHECK_MSG(r.ok(), "domain run failed: " + r.status().ToString());
          out.domain_mapped.reserve(num_domain);
          for (size_t i = 0; i < num_domain; ++i) {
            auto it = r.value().contributions.find(i);
            out.domain_mapped.push_back(
                core::Vec{it == r.value().contributions.end() ? 0.0
                                                              : it->second});
          }
        }
        return out;
      };
  return instance;
}

}  // namespace upa::queries
