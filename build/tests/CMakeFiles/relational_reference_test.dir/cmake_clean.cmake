file(REMOVE_RECURSE
  "CMakeFiles/relational_reference_test.dir/relational_reference_test.cpp.o"
  "CMakeFiles/relational_reference_test.dir/relational_reference_test.cpp.o.d"
  "relational_reference_test"
  "relational_reference_test.pdb"
  "relational_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
