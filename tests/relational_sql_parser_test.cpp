#include "relational/sql_parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "relational/executor.h"

namespace upa::rel {
namespace {

TEST(SqlParserTest, CountStar) {
  auto plan = ParseSql("SELECT COUNT(*) FROM lineitem");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(PlanToString(plan.value()), "Count(Scan(lineitem))");
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  auto plan = ParseSql("select count(*) from lineitem");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(PlanToString(plan.value()), "Count(Scan(lineitem))");
}

TEST(SqlParserTest, SumWithArithmetic) {
  auto plan =
      ParseSql("SELECT SUM(l_extendedprice * l_discount) FROM lineitem");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(PlanToString(plan.value()),
            "Sum(Scan(lineitem), (l_extendedprice * l_discount))");
}

TEST(SqlParserTest, AvgMinMax) {
  for (auto [sql, prefix] :
       {std::pair{"SELECT AVG(x) FROM t", "Avg"},
        std::pair{"SELECT MIN(x) FROM t", "Min"},
        std::pair{"SELECT MAX(x) FROM t", "Max"}}) {
    auto plan = ParseSql(sql);
    ASSERT_TRUE(plan.ok()) << sql;
    EXPECT_EQ(PlanToString(plan.value()),
              std::string(prefix) + "(Scan(t), x)");
  }
}

TEST(SqlParserTest, WhereWithComparisons) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= 365 AND "
      "l_shipdate < 730");
  ASSERT_TRUE(plan.ok());
  std::string s = PlanToString(plan.value());
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find(">="), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

TEST(SqlParserTest, JoinChain) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "JOIN supplier ON l_suppkey = s_suppkey");
  ASSERT_TRUE(plan.ok());
  PlanStats stats = AnalyzePlan(plan.value());
  EXPECT_EQ(stats.num_joins, 2u);
  EXPECT_EQ(stats.num_scans, 3u);
}

TEST(SqlParserTest, InListAndStrings) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM part WHERE p_size IN (1, 4, 7) AND "
      "p_brand != 'Brand#45'");
  ASSERT_TRUE(plan.ok());
  std::string s = PlanToString(plan.value());
  EXPECT_NE(s.find("IN (1, 4, 7)"), std::string::npos);
  EXPECT_NE(s.find("Brand#45"), std::string::npos);
}

TEST(SqlParserTest, NotAndOrPrecedence) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM t WHERE NOT a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(plan.ok());
  // OR binds loosest: ((NOT(a=1) AND b=2) OR c=3).
  std::string s = PlanToString(plan.value());
  EXPECT_NE(s.find("OR"), std::string::npos);
}

TEST(SqlParserTest, ParenthesizedExpressions) {
  auto plan =
      ParseSql("SELECT SUM((a + b) * 2.5) FROM t WHERE (a = 1 OR b = 2)");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(PlanToString(plan.value()).find("2.5"), std::string::npos);
}

TEST(SqlParserTest, ErrorsCarryPosition) {
  for (const char* bad :
       {"", "SELECT", "SELECT COUNT(*)", "SELECT COUNT(*) FROM",
        "SELECT FROM t", "SELECT COUNT(*) FROM t WHERE",
        "SELECT COUNT(*) FROM t extra", "SELECT COUNT(x) FROM t",
        "SELECT COUNT(*) FROM t WHERE a IN ()",
        "SELECT SUM( FROM t", "SELECT COUNT(*) FROM t WHERE 'unterminated"}) {
    auto plan = ParseSql(bad);
    EXPECT_FALSE(plan.ok()) << bad;
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(SqlParserTest, ParsedPlanExecutes) {
  Table t("t",
          Schema({{"k", ValueType::kInt},
                  {"x", ValueType::kDouble},
                  {"name", ValueType::kString}}),
          std::vector<Row>{
              {Value{int64_t{1}}, Value{2.0}, Value{std::string("a")}},
              {Value{int64_t{2}}, Value{4.0}, Value{std::string("b")}},
              {Value{int64_t{3}}, Value{6.0}, Value{std::string("a")}},
          });
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(engine::ExecConfig{.threads = 1});
  PlanExecutor executor(&ctx, &catalog);

  auto count = ParseSql("SELECT COUNT(*) FROM t WHERE name = 'a'");
  ASSERT_TRUE(count.ok());
  auto r1 = executor.Execute(count.value());
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1.value().output, 2.0);

  auto sum = ParseSql("SELECT SUM(x * 10) FROM t WHERE k >= 2");
  ASSERT_TRUE(sum.ok());
  auto r2 = executor.Execute(sum.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2.value().output, 100.0);

  auto avg = ParseSql("SELECT AVG(x) FROM t");
  ASSERT_TRUE(avg.ok());
  auto r3 = executor.Execute(avg.value());
  ASSERT_TRUE(r3.ok());
  EXPECT_DOUBLE_EQ(r3.value().output, 4.0);
}

TEST(SqlParserTest, RoundTripsTpchStyleQueries) {
  // The paper's query shapes, in SQL form, all parse.
  for (const char* sql : {
           "SELECT COUNT(*) FROM lineitem",
           "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = "
           "l_orderkey WHERE o_orderdate >= 400 AND o_orderdate < 490 AND "
           "l_commitdate < l_receiptdate",
           "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
           "l_shipdate >= 365 AND l_shipdate < 730 AND l_discount >= 0.05 "
           "AND l_discount <= 0.07 AND l_quantity < 24",
           "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = "
           "o_custkey WHERE o_orderpriority <> '1-URGENT'",
           "SELECT SUM(ps_supplycost * ps_availqty) FROM nation JOIN "
           "supplier ON n_nationkey = s_nationkey JOIN partsupp ON "
           "s_suppkey = ps_suppkey WHERE n_name = 'GERMANY'",
       }) {
    auto plan = ParseSql(sql);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  }
}

// -- Golden error messages --------------------------------------------------
// These pin the exact position and offending token, not just the code: the
// console surfaces these verbatim, so the messages are part of the contract.

TEST(SqlParserGoldenErrorTest, UnterminatedStringCarriesExactPosition) {
  auto r = ParseSqlSelect("SELECT COUNT(*) FROM t WHERE s = 'oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(), "unterminated string literal at 33");
}

TEST(SqlParserGoldenErrorTest, TrailingCommaInInListNamesTheToken) {
  auto r = ParseSqlSelect("SELECT COUNT(*) FROM t WHERE k IN (1, 2,)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(),
            "expected literal in IN list near position 40 (')')");
}

TEST(SqlParserGoldenErrorTest, HavingWithoutGroupByPointsAtHaving) {
  auto r = ParseSqlSelect("SELECT COUNT(*) FROM t HAVING COUNT(*) > 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(),
            "HAVING requires GROUP BY near position 23 ('HAVING')");
}

TEST(SqlParserGoldenErrorTest, NegativeLimitPointsAtTheSign) {
  auto r = ParseSqlSelect("SELECT COUNT(*) FROM t LIMIT -1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(),
            "LIMIT requires a non-negative integer literal near position 29 "
            "('-')");

  auto frac = ParseSqlSelect("SELECT COUNT(*) FROM t LIMIT 2.5");
  ASSERT_FALSE(frac.ok());
  EXPECT_EQ(frac.status().code(), StatusCode::kInvalidArgument);
}

TEST(SqlParserGoldenErrorTest, AggregateContextRules) {
  auto in_where =
      ParseSqlSelect("SELECT COUNT(*) FROM t WHERE SUM(x) > 3");
  ASSERT_FALSE(in_where.ok());
  EXPECT_NE(in_where.status().message().find("aggregate calls are only"),
            std::string::npos);

  auto nested = ParseSqlSelect("SELECT SUM(AVG(x)) FROM t");
  ASSERT_FALSE(nested.ok());
  EXPECT_NE(nested.status().message().find("nested aggregate calls"),
            std::string::npos);

  auto ungrouped = ParseSqlSelect("SELECT x, COUNT(*) FROM t");
  ASSERT_FALSE(ungrouped.ok());
  EXPECT_NE(
      ungrouped.status().message().find("must appear in GROUP BY"),
      std::string::npos);
}

// -- The wider single-block grammar -----------------------------------------

TEST(SqlSelectTest, GroupByHavingOrderByLimitParse) {
  auto r = ParseSqlSelect(
      "SELECT l_returnflag, SUM(l_quantity) AS qty, COUNT(*) "
      "FROM lineitem WHERE l_shipdate < 700 "
      "GROUP BY l_returnflag HAVING COUNT(*) > 10 "
      "ORDER BY qty DESC, l_returnflag LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SqlSelect& s = r.value();
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[0].name, "l_returnflag");
  EXPECT_EQ(s.items[1].name, "qty");
  EXPECT_EQ(s.items[1].alias, "qty");
  EXPECT_EQ(s.items[2].name, "COUNT(*)");
  ASSERT_EQ(s.aggs.size(), 2u);
  EXPECT_EQ(s.aggs[0].kind, AggKind::kSum);
  EXPECT_EQ(s.aggs[1].kind, AggKind::kCount);
  ASSERT_EQ(s.group_by.size(), 1u);
  EXPECT_EQ(s.group_by[0], "l_returnflag");
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].desc);
  // The alias resolved to the aliased item's expression: the "$agg0" ref.
  EXPECT_EQ(s.order_by[0].expr->ToString(), s.items[1].expr->ToString());
  EXPECT_FALSE(s.order_by[1].desc);
  EXPECT_EQ(s.limit, 5);
  EXPECT_EQ(PlanToString(s.relation),
            "Filter(Scan(lineitem), (l_shipdate < 700))");
}

TEST(SqlSelectTest, DuplicateAggregatesShareOneSlot) {
  auto r = ParseSqlSelect(
      "SELECT SUM(x), AVG(x), SUM(x) * 2, SUM(x + 1) FROM t GROUP BY k "
      "HAVING SUM(x) > 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // SUM(x) appears three times (twice in items, once in HAVING) but is
  // hoisted once; AVG(x) and SUM(x + 1) are distinct slots. (Items need
  // not mention every group key — k appears only in GROUP BY here.)
  EXPECT_EQ(r.value().aggs.size(), 3u);
}

TEST(SqlSelectTest, OrderByOrdinalResolvesToItem) {
  auto r = ParseSqlSelect(
      "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag "
      "ORDER BY 2 DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().order_by.size(), 1u);
  EXPECT_EQ(r.value().order_by[0].expr->ToString(),
            r.value().items[1].expr->ToString());

  auto bad = ParseSqlSelect(
      "SELECT COUNT(*) FROM t GROUP BY k ORDER BY 3");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("out of range"), std::string::npos);
}

TEST(SqlSelectTest, ParseSqlStillCoversTheScalarSubsetOnly) {
  // The DP release entry point keeps its old contract: bare aggregates
  // lower to plans, anything wider points at ExecuteSelect.
  auto scalar = ParseSql("SELECT SUM(x * 2) FROM t WHERE k < 5");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(PlanToString(scalar.value()),
            "Sum(Filter(Scan(t), (k < 5)), (x * 2))");

  for (const char* wide :
       {"SELECT COUNT(*), SUM(x) FROM t",
        "SELECT k, COUNT(*) FROM t GROUP BY k",
        "SELECT SUM(x) * 2 FROM t",
        "SELECT SUM(x) FROM t GROUP BY k"}) {
    auto r = ParseSql(wide);
    ASSERT_FALSE(r.ok()) << wide;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << wide;
    EXPECT_NE(r.status().message().find("ExecuteSelect"), std::string::npos)
        << wide;
  }
}

TEST(SqlSelectTest, AggregateKeywordsStayUsableAsColumnNames) {
  // "min"/"count" without a following '(' are ordinary identifiers.
  auto r = ParseSqlSelect("SELECT SUM(min) FROM t WHERE count > 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().aggs.size(), 1u);
  ASSERT_NE(r.value().aggs[0].expr, nullptr);
  EXPECT_EQ(r.value().aggs[0].expr->ToString(), "min");
}

}  // namespace
}  // namespace upa::rel
