#include "engine/metrics.h"

#include <cstdio>

namespace upa::engine {

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& base) const {
  MetricsSnapshot d;
  d.tasks_launched = tasks_launched - base.tasks_launched;
  d.records_processed = records_processed - base.records_processed;
  d.shuffle_rounds = shuffle_rounds - base.shuffle_rounds;
  d.shuffle_records = shuffle_records - base.shuffle_records;
  d.cache_hits = cache_hits - base.cache_hits;
  d.cache_misses = cache_misses - base.cache_misses;
  d.kernel_batches = kernel_batches - base.kernel_batches;
  d.kernel_rows = kernel_rows - base.kernel_rows;
  d.phase_seconds = phase_seconds;
  for (const auto& [name, secs] : base.phase_seconds) {
    d.phase_seconds[name] -= secs;
  }
  d.phase_tasks = phase_tasks;
  for (const auto& [name, tasks] : base.phase_tasks) {
    d.phase_tasks[name] -= tasks;
  }
  return d;
}

std::string MetricsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tasks=%llu records=%llu shuffles=%llu shuffled_records=%llu "
                "kernel_batches=%llu kernel_rows=%llu cache_hit_rate=%.1f%%",
                static_cast<unsigned long long>(tasks_launched),
                static_cast<unsigned long long>(records_processed),
                static_cast<unsigned long long>(shuffle_rounds),
                static_cast<unsigned long long>(shuffle_records),
                static_cast<unsigned long long>(kernel_batches),
                static_cast<unsigned long long>(kernel_rows),
                cache_hit_rate() * 100.0);
  std::string out = buf;
  for (const auto& [name, secs] : phase_seconds) {
    char pbuf[96];
    std::snprintf(pbuf, sizeof(pbuf), " %s=%.3fms", name.c_str(), secs * 1e3);
    out += pbuf;
  }
  for (const auto& [name, tasks] : phase_tasks) {
    char pbuf[96];
    std::snprintf(pbuf, sizeof(pbuf), " %s.tasks=%llu", name.c_str(),
                  static_cast<unsigned long long>(tasks));
    out += pbuf;
  }
  return out;
}

void ExecMetrics::AddPhaseSeconds(const std::string& phase, double seconds) {
  std::lock_guard lock(phase_mu_);
  phase_seconds_[phase] += seconds;
}

void ExecMetrics::AddPhaseTasks(const std::string& phase, uint64_t n) {
  std::lock_guard lock(phase_mu_);
  phase_tasks_[phase] += n;
}

MetricsSnapshot ExecMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.tasks_launched = tasks_.load(std::memory_order_relaxed);
  s.records_processed = records_.load(std::memory_order_relaxed);
  s.shuffle_rounds = shuffle_rounds_.load(std::memory_order_relaxed);
  s.shuffle_records = shuffle_records_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.kernel_batches = kernel_batches_.load(std::memory_order_relaxed);
  s.kernel_rows = kernel_rows_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(phase_mu_);
    s.phase_seconds = phase_seconds_;
    s.phase_tasks = phase_tasks_;
  }
  return s;
}

void ExecMetrics::Reset() {
  tasks_.store(0);
  records_.store(0);
  shuffle_rounds_.store(0);
  shuffle_records_.store(0);
  cache_hits_.store(0);
  cache_misses_.store(0);
  kernel_batches_.store(0);
  kernel_rows_.store(0);
  std::lock_guard lock(phase_mu_);
  phase_seconds_.clear();
  phase_tasks_.clear();
}

}  // namespace upa::engine
