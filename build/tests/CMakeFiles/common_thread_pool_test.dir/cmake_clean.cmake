file(REMOVE_RECURSE
  "CMakeFiles/common_thread_pool_test.dir/common_thread_pool_test.cpp.o"
  "CMakeFiles/common_thread_pool_test.dir/common_thread_pool_test.cpp.o.d"
  "common_thread_pool_test"
  "common_thread_pool_test.pdb"
  "common_thread_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
