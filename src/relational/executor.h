// PlanExecutor: runs a logical plan on the engine, optionally tracking the
// provenance of a designated *private table* so that per-record influence
// falls out of the run.
//
// Provenance mirrors UPA's joinDP index tracking (§V-C): every row of the
// private table carries its index through filters and joins; at the
// aggregate, each result row's weight is attributed to the private record
// it descends from. Because the evaluated plans are inner-join SPJ trees
// with additive aggregates (Count/Sum), removing private record r changes
// the output by exactly -contribution[r] — which powers
//   * UPA's sampled-neighbour outputs (run the plan with the private table
//     restricted to the sample: the second join/shuffle round),
//   * the per-partition outputs the RANGE ENFORCER compares,
//   * the exhaustive exact ground truth.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/context.h"
#include "relational/plan.h"
#include "relational/table.h"

namespace upa::rel {

/// Which physical engine evaluates the plan.
///   kColumnar — vectorized batch kernels over columnar storage with late
///     materialization (relational/columnar.h). The default: this is the
///     hot path UPA's three-executions-per-run cost structure rides on.
///   kRowOracle — the original row-at-a-time interpreter, kept as the
///     correctness oracle. Both engines aggregate through exact
///     (correctly-rounded) summation, so they agree bit-for-bit on every
///     output — asserted by tests/relational_columnar_test.cpp.
enum class ExecEngine { kRowOracle, kColumnar };

struct ExecOptions {
  /// Physical engine. Results are bit-identical either way; the columnar
  /// engine is simply much faster.
  ExecEngine engine = ExecEngine::kColumnar;
  /// Table whose rows are the privacy unit. Empty → no provenance.
  /// The table must be scanned at most once in the plan.
  std::string private_table;
  /// If set: run with the private table restricted to exactly these row
  /// indices (sorted). Mutually exclusive with exclude_rows. Indexes the
  /// replacement rows when replace_private_rows is also set.
  const std::vector<size_t>* include_rows = nullptr;
  /// If set: run with these row indices (sorted) removed. Indexes the
  /// replacement rows when replace_private_rows is also set.
  const std::vector<size_t>* exclude_rows = nullptr;
  /// If set: replace the private table's rows entirely (synthetic "record
  /// added" neighbours; churned datasets). Provenance = position in this
  /// vector. include/exclude compose on top.
  const std::vector<Row>* replace_private_rows = nullptr;
  /// Cache non-private scans and fully-public plan subtrees in the
  /// context's block cache (keyed by table/plan identity + parallelism +
  /// cache_epoch). UPA's phase runs of one execution share an epoch, so
  /// the S' / sample / domain passes reuse the public side — the effect
  /// behind the paper's Fig 4(b) — without leaking warm state across
  /// independent executions.
  bool use_scan_cache = true;
  uint64_t cache_epoch = 0;
  /// If > 0: also produce per-partition outputs, where private record i
  /// belongs to partition i % partitions. Result rows with no private
  /// provenance count toward every partition (they are unaffected by any
  /// private record).
  size_t partitions = 0;
  /// Record per-private-record additive influence.
  bool track_contributions = false;
  /// Engine parallelism for this run (0 = context default).
  size_t engine_partitions = 0;
};

struct ExecResult {
  /// The scalar aggregate (Count or Sum at the plan root).
  double output = 0.0;
  /// Per-partition outputs (empty unless options.partitions > 0).
  std::vector<double> partition_outputs;
  /// Private row index → additive influence on `output` (only rows that
  /// reached the aggregate appear; absent rows have influence 0).
  std::unordered_map<size_t, double> contributions;
  /// Rows that reached the aggregate.
  size_t result_rows = 0;
};

class PlanExecutor {
 public:
  PlanExecutor(engine::ExecContext* ctx, const Catalog* catalog);

  /// Executes a plan whose root is an Aggregate. Fails with
  /// INVALID_ARGUMENT / NOT_FOUND / UNSUPPORTED on malformed plans.
  Result<ExecResult> Execute(const PlanPtr& plan,
                             const ExecOptions& options = {}) const;

 private:
  engine::ExecContext* ctx_;
  const Catalog* catalog_;
};

}  // namespace upa::rel
