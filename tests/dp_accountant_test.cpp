#include "dp/accountant.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace upa::dp {
namespace {

TEST(AccountantTest, ChargesWithinBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.4).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.4).ok());
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.8);
  EXPECT_NEAR(acc.Remaining("ds"), 0.2, 1e-12);
}

TEST(AccountantTest, RejectsOverBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.9).ok());
  Status s = acc.Charge("ds", 0.2);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  // Failed charge must not consume budget.
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.9);
}

TEST(AccountantTest, ExactBudgetBoundaryAllowed) {
  PrivacyAccountant acc(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(acc.Charge("ds", 0.1).ok()) << "charge " << i;
  }
  EXPECT_FALSE(acc.Charge("ds", 0.01).ok());
}

TEST(AccountantTest, DatasetsHaveIndependentBudgets) {
  PrivacyAccountant acc(0.5);
  EXPECT_TRUE(acc.Charge("a", 0.5).ok());
  EXPECT_TRUE(acc.Charge("b", 0.5).ok());
  EXPECT_FALSE(acc.Charge("a", 0.1).ok());
}

TEST(AccountantTest, RejectsNonPositiveEpsilon) {
  PrivacyAccountant acc(1.0);
  EXPECT_EQ(acc.Charge("ds", 0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acc.Charge("ds", -0.1).code(), StatusCode::kInvalidArgument);
}

TEST(AccountantTest, UnknownDatasetHasZeroSpent) {
  PrivacyAccountant acc(2.0);
  EXPECT_DOUBLE_EQ(acc.Spent("never-seen"), 0.0);
  EXPECT_DOUBLE_EQ(acc.Remaining("never-seen"), 2.0);
}

TEST(AccountantTest, ConcurrentChargesNeverOverspend) {
  PrivacyAccountant acc(1.0);
  std::vector<std::thread> threads;
  std::atomic<int> granted{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (acc.Charge("ds", 0.01).ok()) granted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(acc.Spent("ds"), 1.0 + 1e-9);
  EXPECT_EQ(granted.load(), 100);  // exactly 100 x 0.01 fit in 1.0
}

}  // namespace
}  // namespace upa::dp
