// Linear Regression as a UPA query (the paper's running example, §III).
//
// One full-batch gradient step: the Mapper computes each record's gradient
// contribution, the Reducer sums them, and the (record-independent) post
// step applies the update w' = w - lr · ∇/N. The released scalar is the L2
// norm of the updated weight vector — the model summary whose sensitivity
// UPA infers.
#pragma once

#include <memory>
#include <vector>

#include "mlkit/datagen.h"
#include "upa/query_instance.h"
#include "upa/simple_query.h"

namespace upa::ml {

struct LinRegSpec {
  /// Initial weights (dims entries) and bias. Fixed inputs to the query —
  /// typically the state after previous (public or budgeted) iterations.
  std::vector<double> w0;
  double b0 = 0.0;
  double learning_rate = 0.01;
};

/// Reduced-value layout: [grad_w(0..d-1), grad_b, count].
core::Vec LinRegMap(const LinRegSpec& spec, const MlPoint& p);

/// post: reduced gradient sums -> updated [w(0..d-1), b].
core::Vec LinRegPost(const LinRegSpec& spec, const core::Vec& reduced);

/// The simple-query spec (exposed so the ground-truth harness and churned
/// instances can reuse the exact same mapper/post/scalarize closures).
/// `records_override` substitutes the record set (e.g. a churned copy)
/// while keeping the dataset's distribution as the domain sampler.
core::SimpleQuerySpec<MlPoint> MakeLinRegSpec(
    engine::ExecContext* ctx, const MlDataset& data, LinRegSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override = nullptr);

/// The full QueryInstance over a dataset.
core::QueryInstance MakeLinRegQuery(
    engine::ExecContext* ctx, const MlDataset& data, LinRegSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override = nullptr);

/// Reference (non-private) execution: one gradient step over all points.
/// Used by tests and the ground-truth harness.
std::vector<double> LinRegStep(const LinRegSpec& spec,
                               const std::vector<MlPoint>& points);

}  // namespace upa::ml
