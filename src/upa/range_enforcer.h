// RANGE ENFORCER (paper Algorithm 2).
//
// Detects whether the submitted query is a repeat of a prior query on the
// same or a neighbouring dataset — the attack in UPA's threat model — by
// comparing the query's per-partition output values against a registry of
// all previously answered queries. Two queries whose outputs differ on
// fewer than two partitions may be the same query on neighbouring inputs
// (the overlapped partition reduces to the same value because MapReduce
// operators process records independently); in that case the enforcer
// removes records from the current input (two at a time) until every prior
// query differs on at least two partitions, guaranteeing non-neighbourhood.
//
// The released value is then clamped into the inferred output range Ô_f,
// which upper-bounds the achievable local sensitivity and yields the ε-iDP
// proof of §IV-C.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace upa::core {

/// Outcome of one enforcement pass.
struct EnforcerDecision {
  /// True if any prior query matched on >= P-1 partitions (Algorithm 2's
  /// "Case 2": a potential repeat-query attack).
  bool attack_suspected = false;
  /// Records removed from the current input to force non-neighbourhood.
  size_t records_removed = 0;
  /// Prior queries the current one was compared against.
  size_t prior_queries_checked = 0;
  /// True if the removal loop hit its cap without separating the outputs
  /// (possible for degenerate constant queries); the release still goes
  /// through the clamp, which is what carries the privacy guarantee.
  bool removal_capped = false;
};

class RangeEnforcer {
 public:
  /// `tolerance` is the relative tolerance for "same output value" —
  /// deterministic re-aggregation of identical partitions is bitwise
  /// equal, so this only needs to absorb benign float noise.
  /// `max_removals` caps the total records removed per enforcement.
  explicit RangeEnforcer(double tolerance = 1e-9, size_t max_removals = 64)
      : tolerance_(tolerance), max_removals_(max_removals) {}

  /// Runs Algorithm 2's comparison + removal loop.
  ///
  /// `partition_outputs` is the current query's per-partition output value
  /// (updated in place if records are removed). `recompute(total_removed)`
  /// must return the partition outputs after removing `total_removed`
  /// records from the current input's sample set.
  EnforcerDecision Enforce(
      std::vector<double>& partition_outputs,
      const std::function<std::vector<double>(size_t total_removed)>&
          recompute);

  /// Records the final partition outputs of an answered query
  /// (Algorithm 2 lines 19–21).
  void Register(std::vector<double> partition_outputs);

  size_t registry_size() const { return prior_.size(); }
  void Reset() { prior_.clear(); }

  /// Exposed for tests: the "same value" predicate used in comparisons.
  bool NearlyEqual(double a, double b) const;

 private:
  size_t CountDifferences(const std::vector<double>& current,
                          const std::vector<double>& prior) const;

  double tolerance_;
  size_t max_removals_;
  std::vector<std::vector<double>> prior_;
};

}  // namespace upa::core
