file(REMOVE_RECURSE
  "CMakeFiles/tpch_sweep_test.dir/tpch_sweep_test.cpp.o"
  "CMakeFiles/tpch_sweep_test.dir/tpch_sweep_test.cpp.o.d"
  "tpch_sweep_test"
  "tpch_sweep_test.pdb"
  "tpch_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
