// Deterministic, splittable random number generation.
//
// All randomness in the repository flows from named streams derived from an
// experiment seed, so every test and benchmark is reproducible bit-for-bit
// (DESIGN.md §5 "Determinism"). The core generator is PCG32 seeded through
// SplitMix64, which is also used to derive independent substreams.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace upa {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used for seeding and for
/// deriving independent substreams from (seed, name) pairs.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// PCG32 (Melissa O'Neill): small-state generator with good statistical
/// quality; the sequence constant gives cheap independent streams.
class Pcg32 {
 public:
  using result_type = uint32_t;

  Pcg32() : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}
  Pcg32(uint64_t seed, uint64_t stream) { Seed(seed, stream); }

  void Seed(uint64_t seed, uint64_t stream) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    Next();
    state_ += seed;
    Next();
  }

  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr uint32_t min() { return 0; }
  static constexpr uint32_t max() { return 0xffffffffu; }
  uint32_t operator()() { return Next(); }

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 1;
};

/// A named random stream: all distributions the project needs, backed by
/// PCG32. Derive one per logical purpose, e.g.
/// `Rng rng = Rng::ForStream(seed, "fig2a/trial3/sampler");`
class Rng {
 public:
  explicit Rng(uint64_t seed, uint64_t stream = 0) : gen_(seed, stream) {}

  /// Derives an independent stream from (seed, name). Same inputs always
  /// give the same stream.
  static Rng ForStream(uint64_t seed, std::string_view name);

  uint32_t NextU32() { return gen_.Next(); }
  uint64_t NextU64() {
    return (static_cast<uint64_t>(gen_.Next()) << 32) | gen_.Next();
  }

  /// Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  uint64_t UniformU64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Laplace(0, scale) sample via inverse CDF.
  double Laplace(double scale);

  /// Exponential(rate) sample.
  double Exponential(double rate);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [1, n] with exponent s (s=0 → uniform).
  /// Uses the classic inverse-CDF-over-harmonic approximation; intended for
  /// workload skew, not for exact distribution tests.
  uint64_t Zipf(uint64_t n, double s);

  /// Sample k distinct indices uniformly from [0, n) (k <= n).
  /// Returned in sorted order. Floyd's algorithm: O(k) expected.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  Pcg32& generator() { return gen_; }

 private:
  Pcg32 gen_;
};

}  // namespace upa
