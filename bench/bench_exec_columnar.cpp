// Row interpreter vs columnar engine: wall-clock per TPC-H plan query and
// per UPA phase-run bundle (the S' / sample / domain executions of
// src/queries/plan_query.cpp), plus a bit-identity check on every output.
//
// Emits machine-readable JSON to BENCH_exec.json (override the path with
// UPA_BENCH_JSON) so the perf trajectory of the execution layer can be
// tracked PR-over-PR. Knobs: UPA_ORDERS, UPA_RUNS, UPA_SAMPLE_N,
// UPA_THREADS, UPA_SEED (src/bench_util/harness.h).
//
// Timing protocol: per-query numbers run with the scan cache OFF so they
// measure execution, not memoization (Table::Columnar() is still built
// once — that is a property of the storage layer, not of a run). Phase
// bundles run with the cache ON under a fresh cache_epoch per repetition,
// exactly like the runner: the three phases of one run share the public
// subtrees, independent runs share nothing. All numbers are the minimum
// over UPA_RUNS repetitions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "relational/executor.h"
#include "relational/optimizer.h"
#include "relational/sql_parser.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

using namespace upa;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  double seconds = 0.0;
  rel::ExecResult result;
};

// Best-of-`runs` execution of `plan` under `opts`.
Timed TimeQuery(const rel::PlanExecutor& exec, const rel::PlanPtr& plan,
                rel::ExecOptions opts, size_t runs) {
  Timed best;
  best.seconds = 1e100;
  for (size_t r = 0; r < runs; ++r) {
    double t0 = Now();
    Result<rel::ExecResult> res = exec.Execute(plan, opts);
    double dt = Now() - t0;
    UPA_CHECK_MSG(res.ok(), "bench query failed: " + res.status().ToString());
    if (dt < best.seconds) {
      best.seconds = dt;
      best.result = std::move(res).value();
    }
  }
  return best;
}

// One UPA phase bundle: the three executions MakePlanQuery issues per run,
// sharing one cache epoch. Returns the best total over `runs` repetitions
// (epoch varies per repetition so nothing carries over).
double TimePhaseBundle(const rel::PlanExecutor& exec,
                       const tpch::TpchDataset& data,
                       const tpch::TpchQuery& q, rel::ExecEngine engine,
                       size_t sample_n, size_t runs, uint64_t seed) {
  const size_t n = data.table(q.private_table).NumRows();
  Rng rng = Rng::ForStream(seed, "bench_exec/phases/" + q.name);
  std::vector<size_t> sample =
      rng.SampleWithoutReplacement(n, std::min(sample_n, n));
  std::vector<rel::Row> domain_rows;
  for (size_t i = 0; i < std::min(sample_n, n); ++i) {
    domain_rows.push_back(data.SampleRow(q.private_table, rng));
  }

  double best = 1e100;
  for (size_t r = 0; r < runs; ++r) {
    const uint64_t epoch = seed * 1000 + r;
    double t0 = Now();
    {
      rel::ExecOptions opts;  // S'
      opts.engine = engine;
      opts.private_table = q.private_table;
      opts.exclude_rows = &sample;
      opts.partitions = 4;
      opts.cache_epoch = epoch;
      UPA_CHECK(exec.Execute(q.plan, opts).ok());
    }
    {
      rel::ExecOptions opts;  // sample
      opts.engine = engine;
      opts.private_table = q.private_table;
      opts.include_rows = &sample;
      opts.track_contributions = true;
      opts.cache_epoch = epoch;
      UPA_CHECK(exec.Execute(q.plan, opts).ok());
    }
    {
      rel::ExecOptions opts;  // domain
      opts.engine = engine;
      opts.private_table = q.private_table;
      opts.replace_private_rows = &domain_rows;
      opts.track_contributions = true;
      opts.cache_epoch = epoch;
      UPA_CHECK(exec.Execute(q.plan, opts).ok());
    }
    best = std::min(best, Now() - t0);
  }
  return best;
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Row interpreter vs columnar engine", env);

  tpch::TpchDataset data(tpch::TpchConfig{.num_orders = env.orders,
                                          .max_lineitems_per_order = 7,
                                          .reference_skew = 1.1,
                                          .seed = env.seed});
  rel::Catalog catalog = data.catalog();
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = env.threads, .default_partitions = 4});
  rel::PlanExecutor exec(&ctx, &catalog);

  std::string queries_json, phases_json;
  bool all_identical = true;

  // --- Per-query: plain plan execution, scan cache off.
  TablePrinter qtable(
      {"query", "row (ms)", "columnar (ms)", "speedup", "identical"});
  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    rel::ExecOptions opts;
    opts.use_scan_cache = false;
    opts.engine = rel::ExecEngine::kRowOracle;
    Timed row = TimeQuery(exec, q.plan, opts, env.runs);
    opts.engine = rel::ExecEngine::kColumnar;
    Timed col = TimeQuery(exec, q.plan, opts, env.runs);

    const bool identical = row.result.output == col.result.output &&
                           row.result.result_rows == col.result.result_rows;
    all_identical = all_identical && identical;
    const double speedup = row.seconds / std::max(1e-9, col.seconds);
    qtable.AddRow({q.name, TablePrinter::FormatDouble(row.seconds * 1e3, 3),
                   TablePrinter::FormatDouble(col.seconds * 1e3, 3),
                   TablePrinter::FormatDouble(speedup, 2),
                   identical ? "yes" : "NO"});
    if (!queries_json.empty()) queries_json += ",\n";
    queries_json += "    {\"name\": \"" + q.name +
                    "\", \"row_ms\": " + JsonNum(row.seconds * 1e3) +
                    ", \"columnar_ms\": " + JsonNum(col.seconds * 1e3) +
                    ", \"speedup\": " + JsonNum(speedup) +
                    ", \"output\": " + JsonNum(col.result.output) +
                    ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  qtable.Print("TPC-H plan queries (plain run, scan cache off, min over runs)");

  // --- Per-phase-bundle: the S'/sample/domain triple, cache on.
  TablePrinter ptable(
      {"query", "row 3-phase (ms)", "columnar 3-phase (ms)", "speedup"});
  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    double row = TimePhaseBundle(exec, data, q, rel::ExecEngine::kRowOracle,
                                 env.sample_n, env.runs, env.seed);
    double col = TimePhaseBundle(exec, data, q, rel::ExecEngine::kColumnar,
                                 env.sample_n, env.runs, env.seed);
    const double speedup = row / std::max(1e-9, col);
    ptable.AddRow({q.name, TablePrinter::FormatDouble(row * 1e3, 3),
                   TablePrinter::FormatDouble(col * 1e3, 3),
                   TablePrinter::FormatDouble(speedup, 2)});
    if (!phases_json.empty()) phases_json += ",\n";
    phases_json += "    {\"name\": \"" + q.name +
                   "\", \"row_ms\": " + JsonNum(row * 1e3) +
                   ", \"columnar_ms\": " + JsonNum(col * 1e3) +
                   ", \"speedup\": " + JsonNum(speedup) + "}";
  }
  ptable.Print("UPA phase bundles: S' + sample + domain (min over runs)");

  // --- Fused vs interpreted: filter-heavy single-table aggregates, the
  // Aggregate(Filter*(Scan)) shapes the fused kernels target. Both sides
  // run the columnar engine; only the FuseMode differs. Scan cache off,
  // like the per-query section. Identity is UPA_CHECKed bit-for-bit.
  std::string fused_json;
  const std::vector<std::pair<std::string, std::string>> fused_queries = {
      {"count_qty",
       "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25"},
      {"count_qty_discount",
       "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 40 AND "
       "l_discount < 0.08"},
      {"count_flag_qty",
       "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 30 AND "
       "l_returnflag = 'R'"},
      {"sum_price_window",
       "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate >= 365 "
       "AND l_shipdate < 730 AND l_discount >= 0.03"},
      {"min_price_discount",
       "SELECT MIN(l_extendedprice) FROM lineitem WHERE l_discount < 0.05"},
      {"max_price_qty",
       "SELECT MAX(l_extendedprice) FROM lineitem WHERE l_quantity >= 10"},
  };
  TablePrinter ftable(
      {"query", "interpret (ms)", "fused (ms)", "speedup", "identical"});
  for (const auto& [name, sql] : fused_queries) {
    Result<rel::PlanPtr> parsed = rel::ParseSql(sql);
    UPA_CHECK_MSG(parsed.ok(), "bench SQL failed to parse: " + sql);
    // Optimize first — splitting/ordering conjuncts into a Filter chain —
    // so both sides run the plan shape real consumers execute (a raw
    // parsed AND is one generic conjunct and would undersell both paths).
    rel::PlanPtr plan =
        rel::Optimize(parsed.value(), catalog, rel::OptimizerOptions{});
    rel::ExecOptions opts;
    opts.use_scan_cache = false;
    opts.engine = rel::ExecEngine::kColumnar;
    Timed interp = TimeQuery(
        exec, rel::WithFuseMode(plan, rel::FuseMode::kInterpret), opts,
        env.runs);
    Timed fused = TimeQuery(exec, rel::WithFuseMode(plan, rel::FuseMode::kFuse),
                            opts, env.runs);
    const bool identical =
        interp.result.output == fused.result.output &&
        interp.result.result_rows == fused.result.result_rows;
    all_identical = all_identical && identical;
    const double speedup = interp.seconds / std::max(1e-9, fused.seconds);
    ftable.AddRow({name, TablePrinter::FormatDouble(interp.seconds * 1e3, 3),
                   TablePrinter::FormatDouble(fused.seconds * 1e3, 3),
                   TablePrinter::FormatDouble(speedup, 2),
                   identical ? "yes" : "NO"});
    if (!fused_json.empty()) fused_json += ",\n";
    fused_json += "    {\"name\": \"" + name +
                  "\", \"interpret_ms\": " + JsonNum(interp.seconds * 1e3) +
                  ", \"fused_ms\": " + JsonNum(fused.seconds * 1e3) +
                  ", \"speedup\": " + JsonNum(speedup) +
                  ", \"output\": " + JsonNum(fused.result.output) +
                  ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  ftable.Print(
      "Fused vs interpreted columnar (filter-heavy chains, min over runs)");

  const char* path_env = std::getenv("UPA_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_exec.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  UPA_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::fprintf(f,
               "{\n  \"experiment\": \"exec_columnar\",\n"
               "  \"orders\": %zu,\n  \"sample_n\": %zu,\n"
               "  \"runs\": %zu,\n  \"threads\": %zu,\n  \"seed\": %llu,\n"
               "  \"queries\": [\n%s\n  ],\n"
               "  \"phase_bundles\": [\n%s\n  ],\n"
               "  \"fused\": [\n%s\n  ]\n}\n",
               env.orders, env.sample_n, env.runs, ctx.pool().thread_count(),
               static_cast<unsigned long long>(env.seed),
               queries_json.c_str(), phases_json.c_str(), fused_json.c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());

  UPA_CHECK_MSG(all_identical, "row and columnar outputs diverged");
  return 0;
}
