// A small SQL front-end for the relational layer, covering the query class
// the paper evaluates (and that FLEX consumes): single-block aggregates
// over scans, equi-joins and filters.
//
//   SELECT COUNT(*) FROM lineitem
//   SELECT SUM(l_extendedprice * l_discount) FROM lineitem
//          WHERE l_shipdate >= 365 AND l_shipdate < 730
//   SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey
//          WHERE l_commitdate < l_receiptdate
//
// Grammar (case-insensitive keywords):
//   query   := SELECT agg FROM ident (JOIN ident ON ident '=' ident)*
//              (WHERE expr)?
//   agg     := COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' expr ')'
//   expr    := or; or := and (OR and)*; and := not (AND not)*
//   not     := NOT not | cmp
//   cmp     := add (cmpop add)? | add IN '(' literal (',' literal)* ')'
//   add     := mul (('+'|'-') mul)*; mul := prim (('*'|'/') prim)*
//   prim    := number | 'string' | ident | '(' expr ')'
//
// WHERE applies above the joins (no predicate pushdown — the optimizer is
// out of scope; the executor handles post-join filters fine).
#pragma once

#include <string>

#include "common/status.h"
#include "relational/plan.h"

namespace upa::rel {

/// Parses one SQL statement into a logical plan. Errors carry the offending
/// position/token in the message.
Result<PlanPtr> ParseSql(const std::string& sql);

}  // namespace upa::rel
