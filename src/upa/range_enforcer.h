// RANGE ENFORCER (paper Algorithm 2).
//
// Detects whether the submitted query is a repeat of a prior query on the
// same or a neighbouring dataset — the attack in UPA's threat model — by
// comparing the query's per-partition output values against a registry of
// all previously answered queries. Two queries whose outputs differ on
// fewer than two partitions may be the same query on neighbouring inputs
// (the overlapped partition reduces to the same value because MapReduce
// operators process records independently); in that case the enforcer
// removes records from the current input (two at a time) until every prior
// query differs on at least two partitions, guaranteeing non-neighbourhood.
//
// Removals are re-checked against the *whole* registry: separating the
// outputs from prior k can move them back into collision with a prior
// j < k, so the removal loop runs to a fixpoint where all priors differ on
// >= 2 partitions simultaneously (Algorithm 2's invariant is universally
// quantified over the registry, not per-prior).
//
// The released value is then clamped into the inferred output range Ô_f,
// which upper-bounds the achievable local sensitivity and yields the ε-iDP
// proof of §IV-C.
//
// Thread safety: Enforce / Register / registry_size / Reset each lock an
// internal mutex, so a registry may be shared between runners. A release
// path needs Enforce and the subsequent Register to see the registry
// atomically (no other query may register in between); use Session, which
// holds the registry lock across that window.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace upa::core {

/// Outcome of one enforcement pass.
struct EnforcerDecision {
  /// True if any prior query matched on >= P-1 partitions (Algorithm 2's
  /// "Case 2": a potential repeat-query attack).
  bool attack_suspected = false;
  /// Records removed from the current input to force non-neighbourhood.
  size_t records_removed = 0;
  /// Prior queries the current one was compared against.
  size_t prior_queries_checked = 0;
  /// True if the removal loop hit its cap without separating the outputs
  /// (possible for degenerate constant queries); the release still goes
  /// through the clamp, which is what carries the privacy guarantee.
  bool removal_capped = false;
  /// Full passes over the registry the fixpoint loop needed (1 when no
  /// removal re-collided with an earlier prior).
  size_t fixpoint_passes = 0;
};

class RangeEnforcer {
 public:
  /// `tolerance` is the relative tolerance for "same output value" —
  /// deterministic re-aggregation of identical partitions is bitwise
  /// equal, so this only needs to absorb benign float noise.
  /// `max_removals` caps the total records removed per enforcement.
  explicit RangeEnforcer(double tolerance = 1e-9, size_t max_removals = 64)
      : tolerance_(tolerance), max_removals_(max_removals) {}

  RangeEnforcer(const RangeEnforcer&) = delete;
  RangeEnforcer& operator=(const RangeEnforcer&) = delete;

  /// Runs Algorithm 2's comparison + removal loop to a fixpoint.
  ///
  /// `partition_outputs` is the current query's per-partition output value
  /// (updated in place if records are removed). `recompute(total_removed)`
  /// must return the partition outputs after removing `total_removed`
  /// records from the current input's sample set. `recompute` runs with
  /// the registry lock held.
  EnforcerDecision Enforce(
      std::vector<double>& partition_outputs,
      const std::function<std::vector<double>(size_t total_removed)>&
          recompute);

  /// Records the final partition outputs of an answered query
  /// (Algorithm 2 lines 19–21).
  void Register(std::vector<double> partition_outputs);

  size_t registry_size() const;
  void Reset();

  /// Copy of the registered per-partition outputs, in registration order
  /// (order matters: Enforce iterates the registry in this order). Used by
  /// the service journal's snapshots; doubles are preserved bit-exactly.
  std::vector<std::vector<double>> RegistrySnapshot() const;
  /// Recovery: replace the registry wholesale with journaled priors.
  void RestoreRegistry(std::vector<std::vector<double>> priors);

  /// Exposed for tests: the "same value" predicate used in comparisons.
  bool NearlyEqual(double a, double b) const;

  /// Holds the registry lock across an Enforce → Register window so the
  /// pair is atomic with respect to other sessions sharing the registry.
  /// Release paths (UpaRunner, the service) go through here; standalone
  /// Enforce/Register stay valid for single-owner use.
  class Session {
   public:
    explicit Session(RangeEnforcer& enforcer)
        : enforcer_(enforcer), lock_(enforcer.mu_) {}

    EnforcerDecision Enforce(
        std::vector<double>& partition_outputs,
        const std::function<std::vector<double>(size_t total_removed)>&
            recompute) {
      return enforcer_.EnforceLocked(partition_outputs, recompute);
    }
    void Register(std::vector<double> partition_outputs) {
      enforcer_.RegisterLocked(std::move(partition_outputs));
    }

   private:
    RangeEnforcer& enforcer_;
    std::unique_lock<std::mutex> lock_;
  };

 private:
  friend class Session;

  EnforcerDecision EnforceLocked(
      std::vector<double>& partition_outputs,
      const std::function<std::vector<double>(size_t total_removed)>&
          recompute);
  void RegisterLocked(std::vector<double> partition_outputs);
  size_t CountDifferences(const std::vector<double>& current,
                          const std::vector<double>& prior) const;

  double tolerance_;
  size_t max_removals_;
  mutable std::mutex mu_;
  std::vector<std::vector<double>> prior_;
};

}  // namespace upa::core
