#include "cluster/router.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <sstream>
#include <utility>

#include "net/dial.h"

namespace upa::cluster {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            ::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

Router::Router(std::vector<ShardAddress> shards, RouterConfig config)
    : shard_addrs_(std::move(shards)),
      config_(std::move(config)),
      ring_(shard_addrs_.empty() ? 1 : shard_addrs_.size(),
            config_.ring_vnodes),
      loop_(config_.poller) {
  healthy_ = std::make_unique<std::atomic<bool>[]>(shard_addrs_.size());
  for (size_t i = 0; i < shard_addrs_.size(); ++i) healthy_[i] = false;
  jitter_state_ = config_.backoff_jitter_seed;
}

Router::~Router() { Stop(); }

Status Router::Start() {
  if (started_) return Status::InvalidArgument("router already started");
  if (shard_addrs_.empty()) {
    return Status::InvalidArgument("router requires at least one shard");
  }
  if (config_.max_connections == 0 || config_.max_inflight_per_shard == 0) {
    return Status::InvalidArgument("connection/in-flight caps must be > 0");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    Status st =
        Status::Internal(std::string("bind/listen: ") + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status st =
        Status::Internal(std::string("getsockname: ") + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);
  if (Status st = SetNonBlocking(listen_fd_); !st.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  links_.resize(shard_addrs_.size());
  for (size_t i = 0; i < shard_addrs_.size(); ++i) {
    links_[i].index = i;
    links_[i].addr = shard_addrs_[i];
    links_[i].backoff_ms = config_.backoff_initial_ms;
    links_[i].next_dial_ns = 0;  // dial on the first tick
  }

  started_ = true;
  loop_thread_ = std::thread([this] {
    Status registered = loop_.RegisterFd(
        listen_fd_, /*want_read=*/true, /*want_write=*/false,
        [this](bool readable, bool, bool) {
          if (readable) HandleAccept();
        });
    UPA_CHECK_MSG(registered.ok(), registered.ToString());
    loop_.SetTickHandler(config_.tick_interval_ms, [this] { OnTick(); });
    // Dial every shard right away instead of waiting for the first tick.
    for (ShardLink& link : links_) StartDial(link);
    loop_.Run();
    // Loop exited: tear everything down on the owning thread.
    for (auto& [id, conn] : connections_) {
      loop_.UnregisterFd(conn->fd);
      ::close(conn->fd);
    }
    connections_.clear();
    for (ShardLink& link : links_) {
      if (link.fd >= 0) {
        loop_.UnregisterFd(link.fd);
        ::close(link.fd);
        link.fd = -1;
      }
    }
    loop_.UnregisterFd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  });
  return Status::Ok();
}

void Router::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  loop_.RunInLoop([this] {
    HandleAccept();
    loop_.UnregisterFd(listen_fd_);
  });
  // Drain: give routed queries a chance to come back and flush out.
  int64_t deadline_ns =
      NowNanos() + static_cast<int64_t>(config_.drain_timeout_ms * 1e6);
  while (NowNanos() < deadline_ns) {
    auto probe = std::make_shared<std::promise<bool>>();
    std::future<bool> quiescent = probe->get_future();
    loop_.RunInLoop([this, probe] {
      bool quiet = total_inflight_.load(std::memory_order_acquire) == 0;
      for (const auto& [id, conn] : connections_) {
        if (conn->inflight > 0 ||
            conn->write_offset < conn->write_buffer.size()) {
          quiet = false;
          break;
        }
      }
      probe->set_value(quiet);
    });
    if (quiescent.wait_until(std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(deadline_ns -
                                                      NowNanos())) !=
        std::future_status::ready) {
      break;
    }
    if (quiescent.get()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
}

bool Router::ShardHealthy(size_t shard) const {
  return shard < shard_addrs_.size() &&
         healthy_[shard].load(std::memory_order_acquire);
}

Router::Stats Router::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.open_connections = open_connections_.load(std::memory_order_relaxed);
  s.routed = routed_.load(std::memory_order_relaxed);
  s.replies = replies_.load(std::memory_order_relaxed);
  s.rejected_unavailable =
      rejected_unavailable_.load(std::memory_order_relaxed);
  s.rejected_backpressure =
      rejected_backpressure_.load(std::memory_order_relaxed);
  s.shard_reconnects = shard_reconnects_.load(std::memory_order_relaxed);
  s.failed_over_inflight =
      failed_over_inflight_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.retried = retried_.load(std::memory_order_relaxed);
  s.retry_exhausted = retry_exhausted_.load(std::memory_order_relaxed);
  s.retry_parked = retry_parked_.load(std::memory_order_relaxed);
  return s;
}

std::string Router::StatsText() const {
  Stats s = stats();
  std::ostringstream os;
  os << "== upa router ==\n"
     << "  port                  " << port_ << "\n"
     << "  shards                " << shard_addrs_.size() << "\n"
     << "  open_connections      " << s.open_connections << "\n"
     << "  accepted              " << s.accepted << "\n"
     << "  routed                " << s.routed << "\n"
     << "  replies               " << s.replies << "\n"
     << "  rejected_unavailable  " << s.rejected_unavailable << "\n"
     << "  rejected_backpressure " << s.rejected_backpressure << "\n"
     << "  shard_reconnects      " << s.shard_reconnects << "\n"
     << "  failed_over_inflight  " << s.failed_over_inflight << "\n"
     << "  protocol_errors       " << s.protocol_errors << "\n"
     << "  retried               " << s.retried << "\n"
     << "  retry_exhausted       " << s.retry_exhausted << "\n"
     << "  retry_parked          " << s.retry_parked << "\n";
  for (size_t i = 0; i < shard_addrs_.size(); ++i) {
    os << "  shard[" << i << "] " << shard_addrs_[i].host << ":"
       << shard_addrs_[i].port << " "
       << (ShardHealthy(i) ? "healthy" : "down");
    if (respawn_counter_) os << " respawns=" << respawn_counter_(i);
    os << "\n";
  }
  return os.str();
}

void Router::HandleAccept() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (connections_.size() >= config_.max_connections ||
        !SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<ClientConn>(config_.max_frame_bytes);
    conn->id = id;
    conn->fd = fd;
    Status registered = loop_.RegisterFd(
        fd, /*want_read=*/true, /*want_write=*/false,
        [this, id](bool readable, bool writable, bool error) {
          if (error) {
            CloseClient(id);
            return;
          }
          if (writable) HandleClientWritable(id);
          if (readable) HandleClientReadable(id);
        });
    if (!registered.ok()) {
      ::close(fd);
      continue;
    }
    connections_[id] = std::move(conn);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.store(connections_.size(), std::memory_order_relaxed);
  }
}

void Router::HandleClientReadable(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ClientConn& conn = *it->second;
  if (conn.reads_paused || conn.close_after_flush) return;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.assembler.Feed(std::string_view(buf, static_cast<size_t>(n)));
      ProcessClientFrames(conn);
      auto again = connections_.find(conn_id);
      if (again == connections_.end()) return;
      if (again->second->reads_paused || again->second->close_after_flush) {
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseClient(conn_id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseClient(conn_id);
    return;
  }
}

void Router::HandleClientWritable(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  FlushClient(*it->second);
}

void Router::ProcessClientFrames(ClientConn& conn) {
  const uint64_t conn_id = conn.id;
  for (;;) {
    net::Frame frame;
    Status error = Status::Ok();
    net::FrameAssembler::Outcome outcome = conn.assembler.Next(&frame, &error);
    if (outcome == net::FrameAssembler::Outcome::kNeedMore) return;
    if (outcome == net::FrameAssembler::Outcome::kError) {
      AbortClient(conn, error);
      return;
    }
    switch (frame.type) {
      case net::FrameType::kQueryRequest: {
        net::WireQuery query;
        Status decoded = net::DecodeQueryPayload(frame.payload, &query);
        if (!decoded.ok()) {
          AbortClient(conn, decoded);
          return;
        }
        RouteQuery(conn, std::move(query));
        break;
      }
      case net::FrameType::kStatsRequest: {
        // The router answers stats itself (its own counters + shard link
        // states) rather than fanning out to every shard: the dump stays
        // cheap and available even while shards are down.
        QueueClientWrite(conn, net::EncodeStatsResponseFrame(StatsText()));
        break;
      }
      default: {
        AbortClient(conn, Status::InvalidArgument(
                              "unexpected frame type from client"));
        return;
      }
    }
    if (connections_.find(conn_id) == connections_.end()) return;
  }
}

void Router::RouteQuery(ClientConn& conn, net::WireQuery query) {
  const size_t shard = ring_.ShardFor(query.dataset_id);
  ShardLink& link = links_[shard];

  auto reject = [&](const Status& status, std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
    net::WireResult result;
    result.client_tag = query.client_tag;
    result.code = status.code();
    result.message = status.message();
    result.retry_after_ms = status.retry_after_ms();
    QueueClientWrite(conn, net::EncodeResultFrame(result));
  };

  if (link.state != ShardLink::State::kHealthy) {
    // Breaker open (or half-open): fail fast rather than queue behind an
    // unknown outage, hinting when the next dial attempt is due.
    Status unavailable =
        Status::Unavailable("shard " + std::to_string(shard) +
                            " unavailable (reconnecting); retry");
    unavailable.set_retry_after_ms(
        std::max<int64_t>(1, static_cast<int64_t>(link.backoff_ms)));
    reject(unavailable, rejected_unavailable_);
    return;
  }
  if (link.inflight.size() >= config_.max_inflight_per_shard ||
      link.write_buffer.size() - link.write_offset >
          config_.write_buffer_high_bytes) {
    Status full =
        Status::ResourceExhausted("shard " + std::to_string(shard) +
                                  " is at in-flight capacity; retry");
    full.set_retry_after_ms(10);
    reject(full, rejected_backpressure_);
    return;
  }

  const uint64_t router_tag = next_router_tag_++;
  Route route;
  route.conn_id = conn.id;
  route.client_tag = query.client_tag;
  if (query.client_nonce != 0 && config_.retry_limit > 0) {
    // Keyed: keep the original query so a failover can re-send it. The
    // key makes the re-send budget-safe — a completed release replays.
    route.retries_left = config_.retry_limit;
    route.query = query;
  }
  ++conn.inflight;
  total_inflight_.fetch_add(1, std::memory_order_acq_rel);
  routed_.fetch_add(1, std::memory_order_relaxed);
  query.client_tag = router_tag;
  link.inflight[router_tag] = std::move(route);
  QueueShardWrite(link, net::EncodeQueryFrame(query));
}

void Router::RespondToClient(ClientConn& conn,
                             const net::WireResult& result) {
  replies_.fetch_add(1, std::memory_order_relaxed);
  QueueClientWrite(conn, net::EncodeResultFrame(result));
}

void Router::QueueClientWrite(ClientConn& conn, std::string bytes) {
  if (conn.write_buffer.empty()) {
    conn.write_buffer = std::move(bytes);
    conn.write_offset = 0;
  } else {
    conn.write_buffer += bytes;
  }
  FlushClient(conn);
}

void Router::FlushClient(ClientConn& conn) {
  const uint64_t conn_id = conn.id;
  while (conn.write_offset < conn.write_buffer.size()) {
    ssize_t n = ::send(conn.fd, conn.write_buffer.data() + conn.write_offset,
                       conn.write_buffer.size() - conn.write_offset,
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseClient(conn_id);
    return;
  }
  if (conn.write_offset >= conn.write_buffer.size()) {
    conn.write_buffer.clear();
    conn.write_offset = 0;
    if (conn.close_after_flush) {
      CloseClient(conn_id);
      return;
    }
  }
  UpdateClientInterest(conn);
}

void Router::UpdateClientInterest(ClientConn& conn) {
  const size_t buffered = conn.write_buffer.size() - conn.write_offset;
  const bool want_write = buffered > 0;
  if (buffered > config_.write_buffer_high_bytes) {
    conn.reads_paused = true;
  } else if (buffered == 0 && conn.reads_paused) {
    conn.reads_paused = false;
  }
  const bool want_read = !conn.reads_paused && !conn.close_after_flush;
  (void)loop_.UpdateFd(conn.fd, want_read, want_write);
}

void Router::AbortClient(ClientConn& conn, const Status& error) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  conn.close_after_flush = true;
  QueueClientWrite(conn, net::EncodeErrorFrame(error));
}

void Router::CloseClient(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  loop_.UnregisterFd(it->second->fd);
  ::close(it->second->fd);
  // Routed queries stay in flight on their shards; when the responses
  // come back the routes resolve to a gone connection and are dropped
  // (the shard has already released/charged — the client walked away).
  connections_.erase(it);
  open_connections_.store(connections_.size(), std::memory_order_relaxed);
}

void Router::StartDial(ShardLink& link) {
  Result<int> fd_or = net::StartConnect(link.addr.host, link.addr.port);
  const int64_t now = NowNanos();
  if (!fd_or.ok()) {
    ScheduleRedial(link, now);
    return;
  }
  link.fd = fd_or.value();
  link.assembler =
      std::make_unique<net::FrameAssembler>(config_.max_frame_bytes);
  link.write_buffer.clear();
  link.write_offset = 0;
  link.probe_outstanding = false;
  link.state = ShardLink::State::kConnecting;
  link.dial_deadline_ns =
      now + static_cast<int64_t>(config_.dial_timeout_ms * 1e6);
  const size_t shard = link.index;
  Status registered = loop_.RegisterFd(
      link.fd, /*want_read=*/true, /*want_write=*/true,
      [this, shard](bool readable, bool writable, bool error) {
        HandleShardEvent(shard, readable, writable, error);
      });
  if (!registered.ok()) {
    ::close(link.fd);
    link.fd = -1;
    ScheduleRedial(link, now);
  }
}

void Router::HandleShardEvent(size_t shard, bool readable, bool writable,
                              bool error) {
  ShardLink& link = links_[shard];
  if (link.fd < 0) return;
  if (error) {
    FailShard(link, Status::Internal("shard socket error"));
    return;
  }
  if (link.state == ShardLink::State::kConnecting && writable) {
    Status finished = net::FinishConnect(link.fd);
    if (!finished.ok()) {
      FailShard(link, finished);
      return;
    }
    // Connected; probe before taking traffic. The probe doubles as the
    // recovery barrier: the shard only answers once its journal replay
    // finished (the server starts listening after recovery).
    link.state = ShardLink::State::kProbing;
    SendProbe(link);
    return;
  }
  if (writable) FlushShard(link);
  if (link.fd >= 0 && readable) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = ::recv(link.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        link.assembler->Feed(std::string_view(buf, static_cast<size_t>(n)));
        ProcessShardFrames(link);
        if (link.fd < 0) return;  // frame processing failed the link
        continue;
      }
      if (n == 0) {
        FailShard(link, Status::Unavailable("shard closed connection"));
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      FailShard(link,
                Status::Internal(std::string("recv: ") + ::strerror(errno)));
      return;
    }
  }
}

void Router::ProcessShardFrames(ShardLink& link) {
  for (;;) {
    net::Frame frame;
    Status error = Status::Ok();
    net::FrameAssembler::Outcome outcome =
        link.assembler->Next(&frame, &error);
    if (outcome == net::FrameAssembler::Outcome::kNeedMore) return;
    if (outcome == net::FrameAssembler::Outcome::kError) {
      FailShard(link, error);
      return;
    }
    switch (frame.type) {
      case net::FrameType::kQueryResponse: {
        net::WireResult result;
        Status decoded = net::DecodeResultPayload(frame.payload, &result);
        if (!decoded.ok()) {
          FailShard(link, decoded);
          return;
        }
        auto route_it = link.inflight.find(result.client_tag);
        if (route_it == link.inflight.end()) {
          // Same rule as the client's stale-tag latch: a response nothing
          // is waiting for means the stream is desynchronized.
          FailShard(link, Status::Internal(
                              "shard response for unknown router tag"));
          return;
        }
        Route route = route_it->second;
        link.inflight.erase(route_it);
        total_inflight_.fetch_sub(1, std::memory_order_acq_rel);
        auto conn_it = connections_.find(route.conn_id);
        if (conn_it != connections_.end()) {
          ClientConn& conn = *conn_it->second;
          if (conn.inflight > 0) --conn.inflight;
          result.client_tag = route.client_tag;
          RespondToClient(conn, result);
        }
        break;
      }
      case net::FrameType::kStatsResponse: {
        link.probe_outstanding = false;
        if (link.state == ShardLink::State::kProbing) {
          link.state = ShardLink::State::kHealthy;
          link.backoff_ms = config_.backoff_initial_ms;
          healthy_[link.index].store(true, std::memory_order_release);
          // Recovery barrier passed: the shard answered, so its journal
          // replay is complete — parked routes can re-send now.
          FlushParked(link);
        }
        break;
      }
      case net::FrameType::kError: {
        Status server_error = Status::Ok();
        if (!net::DecodeErrorPayload(frame.payload, &server_error).ok()) {
          server_error = Status::Internal("undecodable shard error frame");
        }
        // The shard closes after an error frame; treat as link death.
        FailShard(link, server_error);
        return;
      }
      default:
        FailShard(link,
                  Status::Internal("unexpected frame type from shard"));
        return;
    }
    if (link.fd < 0) return;
  }
}

void Router::QueueShardWrite(ShardLink& link, std::string bytes) {
  if (link.write_buffer.empty()) {
    link.write_buffer = std::move(bytes);
    link.write_offset = 0;
  } else {
    link.write_buffer += bytes;
  }
  FlushShard(link);
}

void Router::FlushShard(ShardLink& link) {
  while (link.write_offset < link.write_buffer.size()) {
    ssize_t n =
        ::send(link.fd, link.write_buffer.data() + link.write_offset,
               link.write_buffer.size() - link.write_offset, MSG_NOSIGNAL);
    if (n > 0) {
      link.write_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    FailShard(link,
              Status::Internal(std::string("send: ") + ::strerror(errno)));
    return;
  }
  if (link.write_offset >= link.write_buffer.size()) {
    link.write_buffer.clear();
    link.write_offset = 0;
  }
  UpdateShardInterest(link);
}

void Router::UpdateShardInterest(ShardLink& link) {
  if (link.fd < 0) return;
  const bool want_write =
      link.write_offset < link.write_buffer.size() ||
      link.state == ShardLink::State::kConnecting;
  (void)loop_.UpdateFd(link.fd, /*want_read=*/true, want_write);
}

void Router::SendProbe(ShardLink& link) {
  link.probe_outstanding = true;
  link.last_probe_ns = NowNanos();
  link.probe_deadline_ns =
      link.last_probe_ns +
      static_cast<int64_t>(config_.health_probe_timeout_ms * 1e6);
  QueueShardWrite(link, net::EncodeStatsRequestFrame());
}

void Router::FailShard(ShardLink& link, const Status& reason) {
  if (link.fd >= 0) {
    loop_.UnregisterFd(link.fd);
    ::close(link.fd);
    link.fd = -1;
  }
  healthy_[link.index].store(false, std::memory_order_release);
  shard_reconnects_.fetch_add(1, std::memory_order_relaxed);
  const int64_t now = NowNanos();

  // Routed-but-unanswered queries: the shard may or may not have journaled
  // the release, but nothing was delivered. A keyed query with retry
  // budget left is parked — its idempotency key makes the eventual re-send
  // safe either way (journaled → replay; not journaled → the dangling
  // charge is refunded by recovery and the query re-runs). Everything else
  // fails back to the client as unresolved.
  for (auto& [router_tag, route] : link.inflight) {
    total_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    auto conn_it = connections_.find(route.conn_id);
    if (conn_it == connections_.end()) continue;
    if (route.retries_left > 0) {
      --route.retries_left;
      route.park_deadline_ns =
          now + static_cast<int64_t>(config_.retry_timeout_ms * 1e6);
      retry_parked_.fetch_add(1, std::memory_order_relaxed);
      link.parked.push_back(std::move(route));
      continue;
    }
    ClientConn& conn = *conn_it->second;
    failed_over_inflight_.fetch_add(1, std::memory_order_relaxed);
    if (conn.inflight > 0) --conn.inflight;
    net::WireResult result;
    result.client_tag = route.client_tag;
    result.code = StatusCode::kUnavailable;
    result.message =
        "shard " + std::to_string(link.index) + " lost: " + reason.message();
    result.retry_after_ms =
        std::max<int64_t>(1, static_cast<int64_t>(link.backoff_ms));
    RespondToClient(conn, result);
  }
  link.inflight.clear();
  link.write_buffer.clear();
  link.write_offset = 0;
  link.probe_outstanding = false;
  ScheduleRedial(link, now);
}

void Router::FlushParked(ShardLink& link) {
  if (link.parked.empty()) return;
  std::vector<Route> pending = std::move(link.parked);
  link.parked.clear();
  for (Route& route : pending) ResendRoute(std::move(route));
}

void Router::ResendRoute(Route route) {
  retry_parked_.fetch_sub(1, std::memory_order_relaxed);
  auto conn_it = connections_.find(route.conn_id);
  if (conn_it == connections_.end()) return;  // client left while parked
  // Re-resolve the ring — the route must land wherever the dataset lives
  // NOW, not on the link it happened to be parked against.
  const size_t shard = ring_.ShardFor(route.query.dataset_id);
  ShardLink& link = links_[shard];
  ClientConn& conn = *conn_it->second;
  if (link.state != ShardLink::State::kHealthy) {
    // The re-send raced another failure (or resolved to a different,
    // still-down shard): keep waiting on that link's recovery under the
    // original deadline. The park was already paid for from the retry
    // budget — re-parking costs nothing further.
    retry_parked_.fetch_add(1, std::memory_order_relaxed);
    link.parked.push_back(std::move(route));
    return;
  }
  if (link.inflight.size() >= config_.max_inflight_per_shard ||
      link.write_buffer.size() - link.write_offset >
          config_.write_buffer_high_bytes) {
    rejected_backpressure_.fetch_add(1, std::memory_order_relaxed);
    if (conn.inflight > 0) --conn.inflight;
    net::WireResult result;
    result.client_tag = route.client_tag;
    result.code = StatusCode::kResourceExhausted;
    result.message = "shard " + std::to_string(shard) +
                     " is at in-flight capacity after failover; retry";
    result.retry_after_ms = 10;
    RespondToClient(conn, result);
    return;
  }
  const uint64_t router_tag = next_router_tag_++;
  net::WireQuery query = route.query;
  query.client_tag = router_tag;
  retried_.fetch_add(1, std::memory_order_relaxed);
  total_inflight_.fetch_add(1, std::memory_order_acq_rel);
  link.inflight[router_tag] = std::move(route);
  QueueShardWrite(link, net::EncodeQueryFrame(query));
}

void Router::ExpireParked(Route& route, const ShardLink& link) {
  retry_parked_.fetch_sub(1, std::memory_order_relaxed);
  retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
  // An expired retry is still a failover failure as far as observers are
  // concerned — the retry machinery defers failures, it never hides them.
  failed_over_inflight_.fetch_add(1, std::memory_order_relaxed);
  auto conn_it = connections_.find(route.conn_id);
  if (conn_it == connections_.end()) return;
  ClientConn& conn = *conn_it->second;
  if (conn.inflight > 0) --conn.inflight;
  net::WireResult result;
  result.client_tag = route.client_tag;
  result.code = StatusCode::kUnavailable;
  result.message = "shard " + std::to_string(link.index) +
                   " did not recover within the retry window";
  result.retry_after_ms =
      std::max<int64_t>(1, static_cast<int64_t>(link.backoff_ms));
  RespondToClient(conn, result);
}

double Router::JitteredBackoff(double ms) {
  if (config_.backoff_jitter <= 0.0) return ms;
  // Deterministic 64-bit LCG (loop thread only): cheap, seedable, and
  // reproducible across runs for the chaos harnesses.
  jitter_state_ = jitter_state_ * 6364136223846793005ULL +
                  1442695040888963407ULL;
  const double u =
      static_cast<double>((jitter_state_ >> 33) & 0xFFFFFFu) /
      static_cast<double>(0x1000000u);
  const double j = std::min(config_.backoff_jitter, 1.0);
  return ms * (1.0 - j / 2.0 + j * u);
}

void Router::ScheduleRedial(ShardLink& link, int64_t now) {
  link.state = ShardLink::State::kBackoff;
  link.next_dial_ns =
      now + static_cast<int64_t>(JitteredBackoff(link.backoff_ms) * 1e6);
  link.backoff_ms = std::min(link.backoff_ms * 2.0, config_.backoff_max_ms);
}

void Router::OnTick() {
  const int64_t now = NowNanos();
  for (ShardLink& link : links_) {
    if (!link.parked.empty()) {
      std::vector<Route> keep;
      keep.reserve(link.parked.size());
      for (Route& route : link.parked) {
        if (now >= route.park_deadline_ns) {
          ExpireParked(route, link);
        } else {
          keep.push_back(std::move(route));
        }
      }
      link.parked = std::move(keep);
    }
    switch (link.state) {
      case ShardLink::State::kBackoff:
        if (now >= link.next_dial_ns) StartDial(link);
        break;
      case ShardLink::State::kConnecting:
        if (now > link.dial_deadline_ns) {
          FailShard(link, Status::DeadlineExceeded("shard connect timed out"));
        }
        break;
      case ShardLink::State::kProbing:
        if (now > link.probe_deadline_ns) {
          FailShard(link,
                    Status::DeadlineExceeded("shard health probe timed out"));
        }
        break;
      case ShardLink::State::kHealthy:
        if (link.probe_outstanding && now > link.probe_deadline_ns) {
          FailShard(link,
                    Status::DeadlineExceeded("shard health probe timed out"));
        } else if (!link.probe_outstanding &&
                   config_.health_probe_interval_ms > 0.0 &&
                   now - link.last_probe_ns >
                       static_cast<int64_t>(
                           config_.health_probe_interval_ms * 1e6)) {
          SendProbe(link);
        }
        break;
    }
  }
}

}  // namespace upa::cluster
