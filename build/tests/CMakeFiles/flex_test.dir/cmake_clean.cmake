file(REMOVE_RECURSE
  "CMakeFiles/flex_test.dir/flex_test.cpp.o"
  "CMakeFiles/flex_test.dir/flex_test.cpp.o.d"
  "flex_test"
  "flex_test.pdb"
  "flex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
