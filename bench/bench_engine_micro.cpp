// Engine micro-benchmarks (google-benchmark): throughput of the mini-Spark
// substrate's narrow and wide operators — the cost model underneath every
// experiment's timing numbers.
#include <benchmark/benchmark.h>

#include <atomic>
#include <numeric>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/dataset.h"
#include "engine/shuffle.h"

namespace {

using upa::Rng;
using upa::engine::Dataset;
using upa::engine::ExecConfig;
using upa::engine::ExecContext;

ExecContext& Ctx() {
  static ExecContext ctx(ExecConfig{.threads = 0, .default_partitions = 4});
  return ctx;
}

std::vector<double> RandomDoubles(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.UniformDouble(0, 1);
  return v;
}

void BM_DatasetMap(benchmark::State& state) {
  auto ds = Dataset<double>::FromVector(
      &Ctx(), RandomDoubles(static_cast<size_t>(state.range(0)), 1));
  for (auto _ : state) {
    auto mapped = ds.Map([](const double& v) { return v * 2.0 + 1.0; });
    benchmark::DoNotOptimize(mapped.Count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DatasetMap)->Arg(10000)->Arg(100000);

void BM_DatasetFilter(benchmark::State& state) {
  auto ds = Dataset<double>::FromVector(
      &Ctx(), RandomDoubles(static_cast<size_t>(state.range(0)), 2));
  for (auto _ : state) {
    auto filtered = ds.Filter([](const double& v) { return v < 0.5; });
    benchmark::DoNotOptimize(filtered.Count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DatasetFilter)->Arg(10000)->Arg(100000);

void BM_DatasetReduce(benchmark::State& state) {
  auto ds = Dataset<double>::FromVector(
      &Ctx(), RandomDoubles(static_cast<size_t>(state.range(0)), 3));
  for (auto _ : state) {
    double sum = ds.Reduce([](double a, double b) { return a + b; }, 0.0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DatasetReduce)->Arg(10000)->Arg(100000);

void BM_ShuffleByKey(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::pair<int, double>> kv(n);
  for (auto& [k, v] : kv) {
    k = static_cast<int>(rng.UniformU64(1000));
    v = rng.UniformDouble(0, 1);
  }
  auto ds = Dataset<std::pair<int, double>>::FromVector(&Ctx(), kv);
  for (auto _ : state) {
    auto shuffled = upa::engine::ShuffleByKey(ds, 4);
    benchmark::DoNotOptimize(shuffled.Count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShuffleByKey)->Arg(10000)->Arg(100000);

void BM_ReduceByKey(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::pair<int, double>> kv(n);
  for (auto& [k, v] : kv) {
    k = static_cast<int>(rng.UniformU64(100));
    v = 1.0;
  }
  auto ds = Dataset<std::pair<int, double>>::FromVector(&Ctx(), kv);
  for (auto _ : state) {
    auto reduced = upa::engine::ReduceByKey(
        ds, [](double a, double b) { return a + b; }, 4);
    benchmark::DoNotOptimize(reduced.Count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceByKey)->Arg(10000)->Arg(100000);

// ParallelForChunks throughput at a given pool size — the primitive the
// UPA runner's phase-3b/4 pipeline fans out on. Work per index is a small
// vector accumulation, the shape of a per-neighbour Combine+OutputOf.
void BM_ParallelForChunks(benchmark::State& state) {
  upa::ThreadPool pool(static_cast<size_t>(state.range(0)));
  const size_t n = 4096;
  const size_t dim = 64;
  std::vector<std::vector<double>> vecs(n, std::vector<double>(dim, 1.0));
  std::vector<double> out(n);
  for (auto _ : state) {
    pool.ParallelForChunks(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        double acc = 0.0;
        for (double v : vecs[i]) acc += v;
        out[i] = acc;
      }
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForChunks)->Arg(1)->Arg(2)->Arg(4);

// Nested fan-out from inside a worker — exercises the help-run path that
// makes ParallelFor reentrant (and used to deadlock).
void BM_NestedParallelFor(benchmark::State& state) {
  upa::ThreadPool pool(static_cast<size_t>(state.range(0)));
  std::atomic<size_t> sink{0};
  for (auto _ : state) {
    pool.ParallelFor(8, [&](size_t) {
      pool.ParallelFor(64, [&](size_t i) {
        sink.fetch_add(i, std::memory_order_relaxed);
      });
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * 8 * 64);
}
BENCHMARK(BM_NestedParallelFor)->Arg(1)->Arg(2)->Arg(4);

// Failpoint guard cost in a hot loop. With no site active the macro is one
// relaxed atomic load (AnyActive) — Arg(0). Arg(1) activates a site that
// never fires (every-2^62 trigger) to price the slow path's registry lookup.
// The delta between Arg(0) and plain loop iteration is the overhead every
// guarded seam pays in production, and it must stay at noise level.
void BM_FailpointGuard(benchmark::State& state) {
  upa::Failpoints::Instance().DeactivateAll();
  if (state.range(0) == 1) {
    upa::Failpoints::Spec spec;
    spec.action = upa::Failpoints::Action::kError;
    spec.trigger = upa::Failpoints::Trigger::kEveryN;
    spec.every_n = uint64_t{1} << 62;
    upa::Failpoints::Instance().Activate("bench/other_site", spec);
  }
  auto guarded = []() -> upa::Status {
    UPA_FAILPOINT("bench/hot_loop");
    return upa::Status::Ok();
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(guarded().ok());
  }
  upa::Failpoints::Instance().DeactivateAll();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailpointGuard)->Arg(0)->Arg(1);

void BM_HashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  std::vector<std::pair<int, int>> left(n), right(n / 4);
  for (auto& [k, v] : left) {
    k = static_cast<int>(rng.UniformU64(n / 4 + 1));
    v = 1;
  }
  for (size_t i = 0; i < right.size(); ++i) {
    right[i] = {static_cast<int>(i), 2};
  }
  auto l = Dataset<std::pair<int, int>>::FromVector(&Ctx(), left);
  auto r = Dataset<std::pair<int, int>>::FromVector(&Ctx(), right);
  for (auto _ : state) {
    auto joined = upa::engine::HashJoin(l, r, 4);
    benchmark::DoNotOptimize(joined.Count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoin)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
