// Fixed-size thread pool with a parallel-for helper.
//
// The engine schedules one task per dataset partition on this pool, the way
// Spark schedules one task per RDD partition on its executors. The pool size
// defaults to the hardware concurrency and can be overridden (the CI box for
// this repo has a single core; correctness does not depend on parallelism).
//
// ParallelFor / ParallelForChunks are safe to call from inside a pool worker:
// while a caller waits for its chunks it help-runs queued tasks instead of
// blocking, so nested parallelism cannot deadlock even on a 1-thread pool.
//
// Cooperative cancellation: both helpers poll the caller's CancelScope
// token at chunk boundaries — once the token trips, not-yet-started chunks
// are skipped (the caller converts the trip into kCancelled /
// kDeadlineExceeded and discards the partial result). See common/cancel.h.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace upa {

class ThreadPool {
 public:
  /// threads == 0 → std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), partitioned into ~thread_count chunks, and
  /// wait for all of them. Exceptions in fn propagate to the caller.
  /// Returns the number of chunk tasks the work was split into (1 when run
  /// inline). May be called from inside a pool worker (see file comment).
  size_t ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Run fn(chunk_begin, chunk_end) over contiguous chunks and wait.
  /// Returns the number of chunk tasks (1 when run inline).
  size_t ParallelForChunks(size_t n,
                           const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();
  /// Pops and runs one queued task if any; returns false when the queue is
  /// empty. Used by waiters to make progress instead of blocking (the
  /// help-run loop that makes nested ParallelFor safe).
  bool TryRunOneTask();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace upa
