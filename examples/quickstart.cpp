// Quickstart: privately count and sum a dataset in ~30 lines of analyst
// code. Demonstrates the Table I API: dpread → filterDP → countDP /
// reduceSumDP, with automatic sensitivity inference — no manually supplied
// bounds anywhere.
#include <cstdio>
#include <vector>

#include "upa/dp_api.h"

int main() {
  using namespace upa;

  // --- Data provider side -------------------------------------------------
  // 50k salaries (the private records), plus a sampler describing what a
  // plausible fresh record looks like (UPA uses it to simulate the
  // "record added" neighbouring datasets).
  engine::ExecContext ctx;
  Rng gen(2024);
  std::vector<double> salaries(50000);
  for (auto& s : salaries) s = 30000.0 + gen.Exponential(1.0 / 40000.0);
  auto domain = [](Rng& rng) {
    return 30000.0 + rng.Exponential(1.0 / 40000.0);
  };

  core::UpaConfig config;       // n = 1000 samples, ε handled per release
  api::UpaSystem upa(&ctx, config, /*total_budget=*/1.0);
  auto data = upa.dpread<double>(salaries, domain, "salaries-2024");

  // --- Analyst side -------------------------------------------------------
  auto high_earners = data.filterDP([](const double& s) { return s > 100000.0; });
  auto count = high_earners.countDP(/*epsilon=*/0.3);
  auto total = data.reduceSumDP([](const double& s) { return s; },
                                /*epsilon=*/0.5);

  if (!count.ok() || !total.ok()) {
    std::fprintf(stderr, "release failed: %s %s\n",
                 count.status().ToString().c_str(),
                 total.status().ToString().c_str());
    return 1;
  }

  std::printf("Private analytics over %zu salary records\n", salaries.size());
  std::printf("  high earners (>100k):  %.0f   (auto-inferred sensitivity %.3g, eps=0.3)\n",
              count.value().value, count.value().local_sensitivity);
  std::printf("  total payroll:         %.0f   (auto-inferred sensitivity %.3g, eps=0.5)\n",
              total.value().value, total.value().local_sensitivity);
  std::printf("  budget left on dataset: %.2f of %.2f\n",
              upa.accountant().Remaining("salaries-2024"),
              upa.accountant().total_budget());

  // A third query over the same data would exceed the ε budget:
  auto denied = data.countDP(0.5);
  std::printf("  third query (eps=0.5): %s\n",
              denied.ok() ? "released (unexpected!)"
                          : denied.status().ToString().c_str());
  return 0;
}
